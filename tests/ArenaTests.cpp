//===- tests/ArenaTests.cpp - Arena, dense IDs, and flat-stream IR --------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Unit coverage for the data-oriented substrate (docs/PERFORMANCE.md,
// "Memory layout"): the bump-allocator Arena, the typed DenseId handles
// with their IdMap side tables, and the invariant that materializing a
// procedure's flat instruction stream is observationally invisible — the
// printed IR of every example-corpus and suite module is byte-identical
// before and after instStream(), and again after an invalidate/rebuild
// cycle.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/IRPrinter.h"
#include "support/Arena.h"
#include "support/FileIO.h"
#include "support/Ids.h"
#include "workload/Programs.h"

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

using namespace ipcp;
using namespace ipcp::test;

namespace {

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(Arena, AllocationsAreAligned) {
  Arena A;
  for (size_t Align : {size_t(1), size_t(2), size_t(4), size_t(8),
                       size_t(16), size_t(64)}) {
    void *P = A.allocate(3, Align);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
        << "allocation not aligned to " << Align;
  }
}

TEST(Arena, CreateConstructsObjects) {
  struct Point {
    int X, Y;
  };
  static_assert(std::is_trivially_destructible_v<Point>,
                "arena objects must not need destructors");
  Arena A;
  Point *P = A.create<Point>(Point{3, 4});
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
  EXPECT_GE(A.bytesAllocated(), sizeof(Point));
}

TEST(Arena, GrowsAcrossChunksAndCountsBytes) {
  Arena A(/*FirstChunkBytes=*/64);
  EXPECT_EQ(A.bytesAllocated(), 0u);
  size_t Total = 0;
  for (int I = 0; I != 100; ++I) {
    A.allocate(32, alignof(uint64_t));
    Total += 32;
  }
  EXPECT_EQ(A.bytesAllocated(), Total);
  EXPECT_GT(A.chunkCount(), 1u) << "100*32 bytes must outgrow a 64-byte chunk";
}

TEST(Arena, ResetKeepsFirstChunkAndReusesIt) {
  Arena A(/*FirstChunkBytes=*/64);
  for (int I = 0; I != 100; ++I)
    A.allocate(32, alignof(uint64_t));
  ASSERT_GT(A.chunkCount(), 1u);

  A.reset();
  EXPECT_EQ(A.chunkCount(), 1u) << "reset must keep exactly the first chunk";
  EXPECT_EQ(A.bytesAllocated(), 0u);

  // A refill that fits the retained chunk allocates no new chunks.
  void *First = A.allocate(16, alignof(uint64_t));
  EXPECT_EQ(A.chunkCount(), 1u);
  A.reset();
  void *Again = A.allocate(16, alignof(uint64_t));
  EXPECT_EQ(First, Again) << "reset must rewind to the start of chunk 0";
}

//===----------------------------------------------------------------------===//
// DenseId and IdMap
//===----------------------------------------------------------------------===//

TEST(DenseId, InvalidAndRoundTrip) {
  ExprId None;
  EXPECT_FALSE(None.isValid());
  EXPECT_FALSE(bool(None));
  EXPECT_EQ(None, ExprId::invalid());
  EXPECT_EQ(None.rawValue(), ExprId::InvalidIndex);

  ExprId E = ExprId::fromIndex(42);
  EXPECT_TRUE(E.isValid());
  EXPECT_EQ(E.index(), 42u);
  EXPECT_EQ(E.rawValue(), 42u);
  EXPECT_EQ(E, ExprId(42));
  EXPECT_NE(E, None);
  EXPECT_LT(ExprId::fromIndex(7), E);
}

TEST(DenseId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ProcId, VarId>);
  static_assert(!std::is_same_v<BlockId, ExprId>);
  // Hashing goes through the raw index (for cold-path containers).
  EXPECT_EQ(std::hash<ProcId>()(ProcId::fromIndex(9)), size_t(9));
}

TEST(IdMap, GrowsOnWriteAndDefaultsOutOfRange) {
  IdMap<VarId, int> Map;
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.lookup(VarId::fromIndex(5)), 0) << "OOR reads are default";

  Map[VarId::fromIndex(5)] = 55;
  EXPECT_EQ(Map.size(), 6u) << "operator[] grows to cover the key";
  EXPECT_EQ(Map.lookup(VarId::fromIndex(5)), 55);
  EXPECT_EQ(Map.at(VarId::fromIndex(5)), 55);
  EXPECT_EQ(Map.lookup(VarId::fromIndex(3)), 0) << "gap keys are default";
  EXPECT_EQ(Map.lookup(VarId::fromIndex(100)), 0);
}

TEST(IdMap, RoundTripsADensePopulation) {
  IdMap<ProcId, std::string> Names;
  const size_t N = 64;
  for (size_t I = 0; I != N; ++I)
    Names[ProcId::fromIndex(I)] = "proc" + std::to_string(I);
  ASSERT_EQ(Names.size(), N);
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Names.at(ProcId::fromIndex(I)), "proc" + std::to_string(I));
  // Iteration covers the table in index order.
  size_t Seen = 0;
  for (const std::string &S : Names) {
    EXPECT_EQ(S, "proc" + std::to_string(Seen));
    ++Seen;
  }
  EXPECT_EQ(Seen, N);
}

//===----------------------------------------------------------------------===//
// Flat instruction stream: printed IR is invariant
//===----------------------------------------------------------------------===//

/// Prints \p M, materializes every procedure's flat stream, prints again,
/// then invalidates and rebuilds the streams and prints a third time; all
/// three renderings must be byte-identical, and each stream must cover
/// the procedure exactly.
void expectStreamInvisible(Module &M, const std::string &Label) {
  std::string Before = printModule(M);
  for (const auto &P : M.procedures()) {
    const Procedure::InstStream &S = P->instStream();
    EXPECT_EQ(S.size(), P->instructionCount()) << Label << ": stream size";
    EXPECT_EQ(S.numBlocks(), P->blocks().size()) << Label << ": span count";
    uint32_t Cursor = 0;
    for (const Procedure::InstStream::Span &Span : S.Spans) {
      EXPECT_EQ(Span.Begin, Cursor) << Label << ": spans must be contiguous";
      EXPECT_LE(Span.End, S.Insts.size());
      Cursor = Span.End;
    }
    EXPECT_EQ(Cursor, S.Insts.size()) << Label << ": spans must cover stream";
  }
  EXPECT_EQ(printModule(M), Before)
      << Label << ": materializing the stream changed the printed IR";
  for (const auto &P : M.procedures()) {
    P->invalidateInstStream();
    (void)P->instStream();
  }
  EXPECT_EQ(printModule(M), Before)
      << Label << ": an invalidate/rebuild cycle changed the printed IR";
}

TEST(InstStreamEquivalence, ExampleCorpus) {
  unsigned Checked = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(IPCP_EXAMPLES_DIR)) {
    if (Entry.path().extension() != ".mf")
      continue;
    std::string Source, Error;
    ASSERT_TRUE(readFileToString(Entry.path().string(), Source, &Error))
        << Error;
    DiagnosticsEngine Diags;
    std::optional<Program> Prog = parseAndCheck(Source, Diags);
    if (!Prog)
      continue; // e.g. bad_syntax.mf — frontend rejection is its own test
    std::unique_ptr<Module> M = lowerProgram(*Prog);
    expectStreamInvisible(*M, Entry.path().filename().string());
    ++Checked;
  }
  EXPECT_GE(Checked, 3u) << "examples/programs/ lost its corpus";
}

TEST(InstStreamEquivalence, BenchmarkSuite) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    std::unique_ptr<Module> M = loadSuiteModule(Prog);
    expectStreamInvisible(*M, Prog.Name);
  }
}

} // namespace
