//===- tests/BindingGraphTests.cpp - binding multigraph solver tests ------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The binding-multigraph propagator (the paper's cited alternative
// formulation [7]) must compute exactly the same fixpoint as the
// call-graph worklist, while re-evaluating only jump functions whose
// support changed.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/BindingGraph.h"
#include "core/Pipeline.h"
#include "core/ValueNumbering.h"
#include "workload/Generator.h"
#include "workload/Programs.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Builds the analysis state and runs both solvers on the same inputs.
struct DualRun {
  std::unique_ptr<Module> M;
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<ModRefInfo> MRI;
  SSAMap SSA;
  SymExprContext Ctx;
  std::unique_ptr<ReturnJumpFunctions> RJFs;
  std::unique_ptr<ForwardJumpFunctions> FJFs;
  IPCPOptions Opts;

  explicit DualRun(std::unique_ptr<Module> Input, IPCPOptions TheOpts = {})
      : M(std::move(Input)), Opts(TheOpts) {
    CG = std::make_unique<CallGraph>(*M);
    MRI = std::make_unique<ModRefInfo>(
        Opts.UseModInformation ? ModRefInfo::compute(*M, *CG)
                               : ModRefInfo::worstCase(*M));
    for (const std::unique_ptr<Procedure> &P : M->procedures())
      SSA.emplace(P.get(), constructSSA(*P, *MRI));
    if (Opts.UseReturnJumpFunctions)
      RJFs = std::make_unique<ReturnJumpFunctions>(
          ReturnJumpFunctions::build(*CG, *MRI, SSA, Ctx));
    FJFs = std::make_unique<ForwardJumpFunctions>(ForwardJumpFunctions::build(
        *CG, *MRI, SSA, RJFs.get(), Ctx, Opts.ForwardKind));
  }

  ConstantsMap callGraph(PropagatorStats *Stats = nullptr) {
    return propagateConstants(*CG, *MRI, *FJFs, Opts, Stats);
  }
  ConstantsMap bindingGraph(PropagatorStats *Stats = nullptr) {
    return propagateConstantsBindingGraph(*CG, *MRI, *FJFs, Opts, Stats);
  }
};

TEST(BindingGraph, AgreesOnSimpleChain) {
  DualRun Run(lowerOk("proc c(z) { print z; }\n"
                      "proc b(y) { call c(y + 1); }\n"
                      "proc a(x) { call b(x * 2); }\n"
                      "proc main() { call a(5); }"));
  ConstantsMap A = Run.callGraph();
  ConstantsMap B = Run.bindingGraph();
  EXPECT_TRUE(A.equals(B));
  Procedure *C = getProc(*Run.M, "c");
  EXPECT_EQ(B.valueOf(C, C->formals()[0]).getConstant(), 11);
}

TEST(BindingGraph, AgreesOnConflicts) {
  DualRun Run(lowerOk("proc f(a, b) { print a + b; }\n"
                      "proc main() { call f(1, 9); call f(2, 9); }"));
  ConstantsMap A = Run.callGraph();
  ConstantsMap B = Run.bindingGraph();
  EXPECT_TRUE(A.equals(B));
  Procedure *F = getProc(*Run.M, "f");
  EXPECT_TRUE(B.valueOf(F, F->formals()[0]).isBottom());
  EXPECT_EQ(B.valueOf(F, F->formals()[1]).getConstant(), 9);
}

TEST(BindingGraph, AgreesOnRecursion) {
  DualRun Run(lowerOk(
      "proc f(n, k) { if (n > 0) { call f(n - 1, k); } print k; }\n"
      "proc main() { call f(3, 42); }"));
  EXPECT_TRUE(Run.callGraph().equals(Run.bindingGraph()));
}

TEST(BindingGraph, AgreesOnGlobalsAndEntryEdge) {
  DualRun Run(lowerOk("global g, h;\n"
                      "proc use() { print g + h; }\n"
                      "proc main() { g = 5; call use(); }"));
  ConstantsMap A = Run.callGraph();
  ConstantsMap B = Run.bindingGraph();
  EXPECT_TRUE(A.equals(B));
  Procedure *Use = getProc(*Run.M, "use");
  EXPECT_EQ(B.valueOf(Use, Run.M->findGlobal("g")).getConstant(), 5);
  // h reaches use still holding its initial zero.
  EXPECT_EQ(B.valueOf(Use, Run.M->findGlobal("h")).getConstant(), 0);
}

TEST(BindingGraph, AgreesOnUnreachableCallerSemantics) {
  DualRun Run(lowerOk("proc f(a) { print a; }\n"
                      "proc dead() { call f(1); }\n"
                      "proc main() { call f(2); }"));
  ConstantsMap A = Run.callGraph();
  ConstantsMap B = Run.bindingGraph();
  EXPECT_TRUE(A.equals(B));
  Procedure *F = getProc(*Run.M, "f");
  EXPECT_TRUE(B.valueOf(F, F->formals()[0]).isBottom())
      << "the dead call's literal still meets (paper semantics)";
}

TEST(BindingGraph, ReevaluatesOnlyDependentEdges) {
  // A wide fan where only one parameter's lowering matters: the binding
  // graph must evaluate far fewer jump functions than the per-procedure
  // worklist visits.
  std::string Src;
  for (int I = 0; I != 30; ++I)
    Src += "proc leaf" + std::to_string(I) + "(x) { print x; }\n";
  Src += "proc hub(v) {\n";
  for (int I = 0; I != 30; ++I)
    Src += "  call leaf" + std::to_string(I) + "(" + std::to_string(I) +
           ");\n";
  Src += "  call leaf0(v);\n}\n";
  Src += "proc main() { call hub(7); }\n";

  // The binding graph's claimed advantage is over the naive FIFO
  // worklist (the SCC schedule also avoids the revisit, so pin the
  // baseline explicitly).
  IPCPOptions Fifo;
  Fifo.Schedule = PropagationSchedule::FIFO;
  DualRun Run(lowerOk(Src), Fifo);
  PropagatorStats CGStats, BGStats;
  ConstantsMap A = Run.callGraph(&CGStats);
  ConstantsMap B = Run.bindingGraph(&BGStats);
  EXPECT_TRUE(A.equals(B));
  // FIFO worklist: hub is revisited after v lowers, re-evaluating all 31
  // jump functions. Binding graph: only the single v-dependent edge is
  // re-evaluated beyond the initial sweep.
  EXPECT_LT(BGStats.JumpFunctionEvaluations,
            CGStats.JumpFunctionEvaluations);
}

TEST(BindingGraph, PipelineOptionProducesSameResults) {
  for (const char *Name : {"ocean", "linpackd", "snasa7"}) {
    auto M = loadSuiteModule(*findSuiteProgram(Name));
    IPCPOptions Binding;
    Binding.UseBindingGraphPropagator = true;
    IPCPResult A = runIPCP(*M);
    IPCPResult B = runIPCP(*M, Binding);
    EXPECT_EQ(A.TotalConstantRefs, B.TotalConstantRefs) << Name;
    EXPECT_EQ(A.TotalEntryConstants, B.TotalEntryConstants) << Name;
    EXPECT_EQ(A.Facts.ConstantLoads, B.Facts.ConstantLoads) << Name;
  }
}

class BindingGraphEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BindingGraphEquivalence, MatchesCallGraphSolverOnRandomPrograms) {
  GeneratorConfig Config;
  Config.Seed = GetParam();
  Config.NumProcs = 7;
  Config.AllowRecursion = (GetParam() % 3) == 0;
  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::PassThrough,
        JumpFunctionKind::Polynomial}) {
    IPCPOptions Opts;
    Opts.ForwardKind = Kind;
    DualRun Run(lowerOk(generateProgram(Config)), Opts);
    EXPECT_TRUE(Run.callGraph().equals(Run.bindingGraph()))
        << "seed " << GetParam() << " kind " << jumpFunctionKindName(Kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BindingGraphEquivalence,
                         ::testing::Range<uint64_t>(300, 318));

TEST(BindingGraph, WholeSuiteEquivalence) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    DualRun Run(loadSuiteModule(Prog));
    EXPECT_TRUE(Run.callGraph().equals(Run.bindingGraph())) << Prog.Name;
  }
}

} // namespace
