//===- tests/BoundedQueueTests.cpp - service queue primitive tests --------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The daemon's two concurrency primitives (support/BoundedQueue.h) in
// isolation: non-blocking admission, the reorder buffer's exactly-once
// in-order contract under concurrent producers, the backpressure bound,
// and the close/drain race the TSan job hammers — a consumer mid-drain
// while the producers finish and the owner closes.
//
//===----------------------------------------------------------------------===//

#include "support/BoundedQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

TEST(AdmissionGateTest, AdmitsWithinLimitNeverBlocks) {
  AdmissionGate Gate(3);
  EXPECT_TRUE(Gate.tryAcquire());
  EXPECT_TRUE(Gate.tryAcquire(2));
  EXPECT_EQ(Gate.inFlight(), 3u);
  EXPECT_FALSE(Gate.tryAcquire());
  Gate.release(2);
  EXPECT_TRUE(Gate.tryAcquire(2));
  EXPECT_FALSE(Gate.tryAcquire(1));
}

TEST(AdmissionGateTest, ZeroLimitRejectsEverything) {
  AdmissionGate Gate(0);
  EXPECT_FALSE(Gate.tryAcquire());
  EXPECT_FALSE(Gate.tryAcquire(0) && Gate.tryAcquire());
  EXPECT_EQ(Gate.inFlight(), 0u);
}

TEST(AdmissionGateTest, OverReleaseClampsAtZero) {
  AdmissionGate Gate(2);
  ASSERT_TRUE(Gate.tryAcquire());
  Gate.release(100);
  EXPECT_EQ(Gate.inFlight(), 0u);
  // The clamp must not mint capacity beyond the limit.
  EXPECT_TRUE(Gate.tryAcquire(2));
  EXPECT_FALSE(Gate.tryAcquire());
}

TEST(AdmissionGateTest, ConcurrentChurnStaysBounded) {
  AdmissionGate Gate(4);
  std::atomic<size_t> MaxSeen{0};
  std::atomic<uint64_t> Admitted{0};
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W != 8; ++W)
    Workers.emplace_back([&] {
      for (unsigned I = 0; I != 2000; ++I) {
        if (!Gate.tryAcquire())
          continue;
        size_t Now = Gate.inFlight();
        size_t Prev = MaxSeen.load();
        while (Now > Prev && !MaxSeen.compare_exchange_weak(Prev, Now)) {
        }
        Admitted.fetch_add(1);
        Gate.release();
      }
    });
  for (std::thread &T : Workers)
    T.join();
  EXPECT_GT(Admitted.load(), 0u);
  EXPECT_LE(MaxSeen.load(), 4u);
  EXPECT_EQ(Gate.inFlight(), 0u);
}

TEST(OrderedResultQueueTest, ConcurrentProducersDeliverExactlyOnceInOrder) {
  // A tight bound forces producers of later sequence numbers to block
  // on the consumer; the stream must still come out 0,1,2,... with
  // every value delivered exactly once.
  constexpr uint64_t N = 2000;
  OrderedResultQueue<uint64_t> Queue(2);
  std::atomic<uint64_t> NextSeq{0};
  std::vector<std::thread> Producers;
  for (unsigned W = 0; W != 6; ++W)
    Producers.emplace_back([&] {
      for (;;) {
        uint64_t Seq = NextSeq.fetch_add(1);
        if (Seq >= N)
          return;
        Queue.push(Seq, Seq * 3 + 1);
      }
    });

  std::vector<uint64_t> Got;
  std::thread Consumer([&] {
    uint64_t Value;
    while (Got.size() != N && Queue.pop(Value))
      Got.push_back(Value);
  });
  for (std::thread &T : Producers)
    T.join();
  Consumer.join();

  ASSERT_EQ(Got.size(), N);
  for (uint64_t I = 0; I != N; ++I)
    EXPECT_EQ(Got[I], I * 3 + 1) << "sequence " << I;
  // The in-order entry is admitted past the bound, so the peak may
  // exceed MaxBuffered by exactly one — never more.
  EXPECT_LE(Queue.peakBuffered(), 3u);
}

TEST(OrderedResultQueueTest, CloseDrainRaceDeliversEverything) {
  // The daemon's shutdown sequence: producers finish, the owner closes,
  // while the consumer is mid-drain. No delivered value may be lost or
  // duplicated, and pop must return false exactly once the buffer is
  // both closed and empty — under TSan this is also a data-race probe.
  for (unsigned Round = 0; Round != 50; ++Round) {
    constexpr uint64_t N = 64;
    OrderedResultQueue<int> Queue(4);
    std::atomic<uint64_t> NextSeq{0};
    std::vector<std::thread> Producers;
    for (unsigned W = 0; W != 4; ++W)
      Producers.emplace_back([&] {
        for (;;) {
          uint64_t Seq = NextSeq.fetch_add(1);
          if (Seq >= N)
            return;
          Queue.push(Seq, int(Seq));
        }
      });

    std::vector<int> Got;
    std::thread Consumer([&] {
      int Value;
      while (Queue.pop(Value))
        Got.push_back(Value);
    });

    for (std::thread &T : Producers)
      T.join();
    Queue.close(); // races the consumer's drain, as in the daemon
    Consumer.join();

    ASSERT_EQ(Got.size(), N) << "round " << Round;
    for (uint64_t I = 0; I != N; ++I)
      EXPECT_EQ(Got[I], int(I)) << "round " << Round;
    // Closed and drained: every further pop fails immediately.
    int Value;
    EXPECT_FALSE(Queue.pop(Value));
    EXPECT_FALSE(Queue.pop(Value));
  }
}

TEST(OrderedResultQueueTest, PopBlocksUntilInOrderArrives) {
  OrderedResultQueue<int> Queue;
  Queue.push(1, 11); // out of order: pop(0) must not deliver this
  std::atomic<bool> Got0{false};
  std::thread Consumer([&] {
    int Value;
    ASSERT_TRUE(Queue.pop(Value));
    EXPECT_EQ(Value, 7);
    Got0.store(true);
    ASSERT_TRUE(Queue.pop(Value));
    EXPECT_EQ(Value, 11);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(Got0.load());
  Queue.push(0, 7);
  Consumer.join();
  Queue.close();
  int Value;
  EXPECT_FALSE(Queue.pop(Value));
}

} // namespace
