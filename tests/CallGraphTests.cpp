//===- tests/CallGraphTests.cpp - call graph & SCC tests ------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/CallGraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

using namespace ipcp;
using namespace ipcp::test;

namespace {

TEST(CallGraph, EdgesAndSites) {
  auto M = lowerOk("proc a() { }\n"
                   "proc b() { call a(); call a(); }\n"
                   "proc main() { call b(); call a(); }");
  CallGraph CG(*M);
  Procedure *A = getProc(*M, "a");
  Procedure *B = getProc(*M, "b");
  Procedure *Main = getProc(*M, "main");

  EXPECT_EQ(CG.callSitesIn(B).size(), 2u) << "parallel edges preserved";
  EXPECT_EQ(CG.callees(B), std::vector<Procedure *>{A});
  EXPECT_EQ(CG.callees(Main).size(), 2u);
  std::vector<Procedure *> CallersOfA = CG.callers(A);
  EXPECT_EQ(CallersOfA.size(), 2u);
  EXPECT_TRUE(std::find(CallersOfA.begin(), CallersOfA.end(), B) !=
              CallersOfA.end());
  EXPECT_TRUE(CG.callers(Main).empty());
}

TEST(CallGraph, DirectRecursionDetected) {
  auto M = lowerOk("proc f(n) { if (n > 0) { call f(n - 1); } }\n"
                   "proc main() { call f(3); }");
  CallGraph CG(*M);
  EXPECT_TRUE(CG.isRecursive(getProc(*M, "f")));
  EXPECT_FALSE(CG.isRecursive(getProc(*M, "main")));
}

TEST(CallGraph, MutualRecursionFormsOneSCC) {
  auto M = lowerOk("proc even(n) { if (n > 0) { call odd(n - 1); } }\n"
                   "proc odd(n) { if (n > 0) { call even(n - 1); } }\n"
                   "proc main() { call even(4); }");
  CallGraph CG(*M);
  EXPECT_TRUE(CG.isRecursive(getProc(*M, "even")));
  EXPECT_TRUE(CG.isRecursive(getProc(*M, "odd")));
  bool FoundPair = false;
  for (const std::vector<Procedure *> &SCC : CG.sccsBottomUp())
    if (SCC.size() == 2)
      FoundPair = true;
  EXPECT_TRUE(FoundPair);
}

TEST(CallGraph, BottomUpOrderPutsCalleesFirst) {
  auto M = lowerOk("proc leaf() { }\n"
                   "proc mid() { call leaf(); }\n"
                   "proc main() { call mid(); }");
  CallGraph CG(*M);
  std::unordered_map<Procedure *, size_t> Position;
  size_t Index = 0;
  for (const std::vector<Procedure *> &SCC : CG.sccsBottomUp())
    for (Procedure *P : SCC)
      Position[P] = Index++;
  EXPECT_LT(Position[getProc(*M, "leaf")], Position[getProc(*M, "mid")]);
  EXPECT_LT(Position[getProc(*M, "mid")], Position[getProc(*M, "main")]);
}

TEST(CallGraph, BottomUpOrderPropertyOnAcyclicGraphs) {
  auto M = lowerOk("proc d() { }\n"
                   "proc c() { call d(); }\n"
                   "proc b() { call d(); call c(); }\n"
                   "proc a() { call b(); call c(); }\n"
                   "proc main() { call a(); }");
  CallGraph CG(*M);
  std::unordered_map<Procedure *, size_t> Position;
  size_t Index = 0;
  for (const std::vector<Procedure *> &SCC : CG.sccsBottomUp()) {
    EXPECT_EQ(SCC.size(), 1u) << "acyclic program";
    Position[SCC.front()] = Index++;
  }
  // Every callee must appear before its caller.
  for (Procedure *P : CG.procedures())
    for (Procedure *Q : CG.callees(P))
      EXPECT_LT(Position[Q], Position[P])
          << Q->getName() << " should precede " << P->getName();
}

TEST(CallGraph, SCCsPartitionTheProcedures) {
  auto M = lowerOk("proc x() { call y(); }\n"
                   "proc y() { call x(); }\n"
                   "proc z() { }\n"
                   "proc main() { call x(); call z(); }");
  CallGraph CG(*M);
  unsigned Total = 0;
  for (const std::vector<Procedure *> &SCC : CG.sccsBottomUp())
    Total += SCC.size();
  EXPECT_EQ(Total, M->procedures().size());
}

TEST(CallGraph, ReachabilityFromEntry) {
  auto M = lowerOk("proc used() { }\n"
                   "proc unused() { call used(); }\n"
                   "proc main() { call used(); }");
  CallGraph CG(*M);
  auto Reachable = CG.reachableFrom(getProc(*M, "main"));
  EXPECT_TRUE(Reachable.count(getProc(*M, "used")));
  EXPECT_FALSE(Reachable.count(getProc(*M, "unused")));
  EXPECT_TRUE(Reachable.count(getProc(*M, "main")));
  EXPECT_TRUE(CG.reachableFrom(nullptr).empty());
}

TEST(CallGraph, SelfLoopSCC) {
  auto M = lowerOk("proc f() { call f(); }\nproc main() { }",
                   /*RequireMain=*/true);
  CallGraph CG(*M);
  EXPECT_TRUE(CG.isRecursive(getProc(*M, "f")));
  for (const std::vector<Procedure *> &SCC : CG.sccsBottomUp())
    EXPECT_EQ(SCC.size(), 1u);
}

} // namespace
