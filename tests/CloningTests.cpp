//===- tests/CloningTests.cpp - procedure cloning tests -------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Cloning.h"
#include "interp/Interpreter.h"
#include "workload/Oracle.h"
#include "workload/Programs.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Two call sites disagree on `n`, so the meet destroys it; cloning
/// recovers a constant in each copy.
const char *Divergent = R"(
proc kernel(n, w) {
  var i;
  do i = 1, n {
    print i * w + n;
  }
}
proc main() {
  call kernel(4, 2);
  call kernel(8, 2);
}
)";

TEST(Cloning, RecoversDivergentConstants) {
  auto M = lowerOk(Divergent);
  CloningResult R = cloneForConstants(*M);
  EXPECT_EQ(R.ClonesCreated, 1u);
  EXPECT_GT(R.RefsAfter, R.RefsBefore)
      << "each copy of kernel now sees a constant n";
  EXPECT_GT(R.ConstantsAfter, R.ConstantsBefore);
  expectVerifies(*M, VerifyMode::PreSSA);
}

TEST(Cloning, ClonedModuleBehavesIdentically) {
  auto M = lowerOk(Divergent);
  ExecutionResult Before = interpret(*M);
  cloneForConstants(*M);
  ExecutionResult After = interpret(*M);
  EXPECT_EQ(Before.Output, After.Output);
  EXPECT_TRUE(After.ok());
}

TEST(Cloning, ResultStaysSound) {
  auto M = lowerOk(Divergent);
  cloneForConstants(*M);
  IPCPResult R = runIPCP(*M);
  OracleReport Report = checkSoundness(*M, R);
  EXPECT_TRUE(Report.Sound) << Report.str();
}

TEST(Cloning, AgreeingSitesNeedNoClones) {
  auto M = lowerOk("proc f(a) { print a; }\n"
                   "proc main() { call f(3); call f(3); }");
  CloningResult R = cloneForConstants(*M);
  EXPECT_EQ(R.ClonesCreated, 0u);
  EXPECT_EQ(R.RefsAfter, R.RefsBefore);
}

TEST(Cloning, NonConstantDisagreementIsNotProfitable) {
  auto M = lowerOk("proc f(a) { print a; }\n"
                   "proc main() { var x; read x; call f(x); call f(3); }");
  CloningResult R = cloneForConstants(*M);
  // One group is bottom-only; cloning the literal group recovers a = 3.
  EXPECT_LE(R.ClonesCreated, 1u);
  if (R.ClonesCreated) {
    EXPECT_GT(R.RefsAfter, R.RefsBefore);
  }
}

TEST(Cloning, RecursiveProceduresAreSkipped) {
  auto M = lowerOk("proc f(n) { if (n > 0) { call f(n - 1); } print n; }\n"
                   "proc main() { call f(4); call f(9); }");
  CloningResult R = cloneForConstants(*M);
  EXPECT_EQ(R.ClonesCreated, 0u);
}

TEST(Cloning, PerProcedureCapRespected) {
  auto M = lowerOk("proc f(a) { print a; }\n"
                   "proc main() { call f(1); call f(2); call f(3); call "
                   "f(4); call f(5); call f(6); }");
  CloningOptions Opts;
  Opts.MaxClonesPerProcedure = 3;
  CloningResult R = cloneForConstants(*M, Opts);
  EXPECT_LE(R.ClonesCreated, 2u) << "original + at most 2 copies";
  expectVerifies(*M, VerifyMode::PreSSA);
}

TEST(Cloning, GrowthCapStopsCloning) {
  auto M = lowerOk(Divergent);
  CloningOptions Opts;
  Opts.MaxGrowthFactor = 1.0; // no growth allowed at all
  CloningResult R = cloneForConstants(*M, Opts);
  EXPECT_EQ(R.ClonesCreated, 0u);
  EXPECT_EQ(R.InstructionsAfter, R.InstructionsBefore);
}

TEST(Cloning, MultipleRoundsCascade) {
  // Cloning mid exposes distinct constants for leaf only after mid's
  // copies exist: requires a second round.
  auto M = lowerOk("proc leaf(k) { print k * k; }\n"
                   "proc mid(n) { call leaf(n + 1); }\n"
                   "proc main() { call mid(10); call mid(20); }");
  CloningResult R = cloneForConstants(*M);
  EXPECT_GE(R.ClonesCreated, 2u) << "mid is cloned, then leaf";
  EXPECT_GE(R.RoundsRun, 2u);
  EXPECT_GT(R.RefsAfter, R.RefsBefore);
  ExecutionResult Exec = interpret(*M);
  EXPECT_TRUE(Exec.ok());
}

TEST(Cloning, SuiteProgramsRemainSoundAfterCloning) {
  for (const char *Name : {"linpackd", "qcd", "snasa7"}) {
    auto M = lowerOk(findSuiteProgram(Name)->Source);
    CloningResult R = cloneForConstants(*M);
    EXPECT_GE(R.RefsAfter, R.RefsBefore) << Name;
    OracleReport Report = checkSoundness(*M, runIPCP(*M));
    EXPECT_TRUE(Report.Sound) << Name << ": " << Report.str();
    expectVerifies(*M, VerifyMode::PreSSA);
  }
}

} // namespace
