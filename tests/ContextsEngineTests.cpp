//===- tests/ContextsEngineTests.cpp - value-contexts engine tests --------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The contract of --engine=contexts (docs/CONTEXTS.md), checked four ways:
//
//  1. precision: strictly more constants than the 1986 engine on the
//     checked-in correlated-formals example, and never fewer — per
//     procedure, as a set — on any suite program under any jump
//     function class;
//  2. soundness: facts produced per context drive --optimize without
//     changing observable behavior (interpreter differential);
//  3. determinism: repeat runs, job sweeps, and the context_study block
//     are byte-identical;
//  4. degradation: a MaxContexts budget of 1 and unbounded recursion
//     both terminate, stay sound, and report the trip.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Report.h"
#include "core/SuiteRunner.h"
#include "core/ValueContexts.h"
#include "interp/Interpreter.h"
#include "support/FileIO.h"
#include "transform/Transform.h"
#include "workload/Programs.h"
#include "workload/SuiteReport.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

using namespace ipcp;
using namespace ipcp::test;

namespace {

IPCPResult analyze(const std::string &Source, IPCPOptions Opts = {}) {
  auto M = lowerOk(Source);
  return runIPCP(*M, Opts);
}

IPCPOptions contextsOptions() {
  IPCPOptions Opts;
  Opts.Engine = PropagationEngine::Contexts;
  return Opts;
}

/// CONSTANTS(p) of every procedure as comparable (proc, var, value)
/// triples.
std::set<std::tuple<std::string, std::string, ConstantValue>>
allConstants(const IPCPResult &R) {
  std::set<std::tuple<std::string, std::string, ConstantValue>> Out;
  for (const ProcedureResult &PR : R.Procs)
    for (const auto &[Name, Value] : PR.EntryConstants)
      Out.insert({PR.Name, Name, Value});
  return Out;
}

/// The swapped-pair program: both calls reach blend with {1,2}, so the
/// x + y it forwards is 3 on every path. Merging callers first loses
/// that; tabulating contexts keeps it.
const char *SwapSource = "global out;\n"
                         "proc scale(s) { out = out + s * 7; print s; }\n"
                         "proc blend(x, y) { call scale(x + y); }\n"
                         "proc main() {\n"
                         "  out = 0;\n"
                         "  call blend(1, 2);\n"
                         "  call blend(2, 1);\n"
                         "  print out;\n"
                         "}\n";

TEST(ContextsEngine, StrictWinOnCorrelatedFormals) {
  IPCPResult Jump = analyze(SwapSource);
  IPCPResult Ctx = analyze(SwapSource, contextsOptions());

  // The 1986 engine meets (1,2) with (2,1) into (bottom, bottom) and
  // proves nothing about scale.
  const ProcedureResult *JumpScale = Jump.findProc("scale");
  ASSERT_NE(JumpScale, nullptr);
  EXPECT_TRUE(JumpScale->EntryConstants.empty());

  // The contexts engine evaluates x + y in each context and meets the
  // *results*: 3 both times.
  const ProcedureResult *CtxScale = Ctx.findProc("scale");
  ASSERT_NE(CtxScale, nullptr);
  ASSERT_EQ(CtxScale->EntryConstants.size(), 1u);
  EXPECT_EQ(CtxScale->EntryConstants[0].first, "s");
  EXPECT_EQ(CtxScale->EntryConstants[0].second, 3);

  EXPECT_GT(Ctx.TotalEntryConstants, Jump.TotalEntryConstants);
  EXPECT_GT(Ctx.TotalConstantRefs, Jump.TotalConstantRefs);

  // The study block quantifies exactly that delta.
  ASSERT_TRUE(Ctx.ContextStudy.Enabled);
  EXPECT_GT(Ctx.ContextStudy.ValConstants,
            Ctx.ContextStudy.BaselineValConstants);
  EXPECT_FALSE(Ctx.ContextStudy.BudgetTripped);
  EXPECT_FALSE(Jump.ContextStudy.Enabled);
}

TEST(ContextsEngine, CheckedInExampleMatchesInlineSource) {
  // The acceptance example is a file users can run; keep it in lockstep
  // with the inline copy this test reasons about.
  std::string FromDisk, Error;
  ASSERT_TRUE(readFileToString(std::string(IPCP_EXAMPLES_DIR) +
                                   "/context_swap.mf",
                               FromDisk, &Error))
      << Error;
  IPCPResult Ctx = analyze(FromDisk, contextsOptions());
  IPCPResult Jump = analyze(FromDisk);
  EXPECT_GT(Ctx.TotalEntryConstants, Jump.TotalEntryConstants)
      << "examples/programs/context_swap.mf must stay a strict win";
  const ProcedureResult *Scale = Ctx.findProc("scale");
  ASSERT_NE(Scale, nullptr);
  ASSERT_EQ(Scale->EntryConstants.size(), 1u);
  EXPECT_EQ(Scale->EntryConstants[0].second, 3);
}

TEST(ContextsEngine, NeverFewerConstantsOnSuite) {
  const JumpFunctionKind Kinds[] = {
      JumpFunctionKind::Literal, JumpFunctionKind::IntraproceduralConstant,
      JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial};
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    std::unique_ptr<Module> M = loadSuiteModule(Prog);
    for (JumpFunctionKind Kind : Kinds) {
      IPCPOptions JumpOpts;
      JumpOpts.ForwardKind = Kind;
      IPCPOptions CtxOpts = contextsOptions();
      CtxOpts.ForwardKind = Kind;
      IPCPResult Jump = runIPCP(*M, JumpOpts);
      IPCPResult Ctx = runIPCP(*M, CtxOpts);

      auto JumpSet = allConstants(Jump);
      auto CtxSet = allConstants(Ctx);
      for (const auto &Fact : JumpSet)
        EXPECT_TRUE(CtxSet.count(Fact))
            << Prog.Name << " jf=" << jumpFunctionKindName(Kind) << ": lost "
            << std::get<0>(Fact) << "." << std::get<1>(Fact) << "="
            << std::get<2>(Fact);
      // Refs carry no general >= bound — extra constants can kill a
      // branch and un-count the refs inside it (docs/CONTEXTS.md) —
      // but identical CONSTANTS sets mean identical record-stage seeds,
      // so the refs must then match exactly.
      if (CtxSet == JumpSet)
        EXPECT_EQ(Ctx.TotalConstantRefs, Jump.TotalConstantRefs)
            << Prog.Name << " jf=" << jumpFunctionKindName(Kind);
      ASSERT_TRUE(Ctx.ContextStudy.Enabled) << Prog.Name;
      EXPECT_GE(Ctx.ContextStudy.ValConstants,
                Ctx.ContextStudy.BaselineValConstants)
          << Prog.Name;
    }
  }
}

TEST(ContextsEngine, OptimizeDifferentialOnSwapProgram) {
  auto M = lowerOk(SwapSource);
  ExecutionOptions Exec;
  Exec.RecordEntrySnapshots = false;
  ExecutionResult Before = interpret(*M, Exec);
  ASSERT_TRUE(Before.ok());

  optimizeModule(*M, contextsOptions());
  expectVerifies(*M, VerifyMode::PreSSA);
  ExecutionResult After = interpret(*M, Exec);
  ASSERT_TRUE(After.ok());
  EXPECT_EQ(After.Output, Before.Output)
      << "context facts drove a behavior-changing rewrite";
  EXPECT_LE(After.Steps, Before.Steps);
}

TEST(ContextsEngine, OptimizeDifferentialOnSuite) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    std::unique_ptr<Module> M = loadSuiteModule(Prog);
    ExecutionOptions Exec;
    Exec.MaxSteps = 2'000'000;
    Exec.InputSeed = 23;
    Exec.RecordEntrySnapshots = false;
    ExecutionResult Before = interpret(*M, Exec);
    optimizeModule(*M, contextsOptions());
    expectVerifies(*M, VerifyMode::PreSSA);
    ExecutionResult After = interpret(*M, Exec);
    if (Before.ok()) {
      EXPECT_EQ(After.TheStatus, Before.TheStatus) << Prog.Name;
      EXPECT_EQ(After.Output, Before.Output) << Prog.Name;
    }
  }
}

TEST(ContextsEngine, RepeatRunsByteIdentical) {
  auto RunOnce = [] {
    IPCPResult R = analyze(SwapSource, contextsOptions());
    JsonValue Doc = resultToJson(R);
    scrubReportTimings(Doc);
    return Doc.dump(2);
  };
  std::string First = RunOnce();
  std::string Second = RunOnce();
  EXPECT_EQ(First, Second);
}

TEST(ContextsEngine, SuiteReportByteIdenticalAcrossJobCounts) {
  auto ReportAt = [](unsigned Jobs) {
    SuiteRunner Runner(Jobs);
    SuiteStudyResult Study =
        runSuiteStudy(Runner, /*BuildReports=*/true, /*CacheDir=*/"",
                      PropagationEngine::Contexts);
    EXPECT_EQ(Study.Failures, 0);
    JsonValue Doc = buildSuiteReport(Study);
    scrubReportTimings(Doc);
    return Doc.dump(2);
  };
  std::string Sequential = ReportAt(1);
  std::string Parallel = ReportAt(4);
  EXPECT_EQ(Sequential, Parallel);
  EXPECT_NE(Sequential.find("\"engine\": \"contexts\""), std::string::npos);
  EXPECT_NE(Sequential.find("\"context_study\""), std::string::npos);
}

TEST(ContextsEngine, BudgetDegradesToBaselineSoundly) {
  IPCPOptions Tight = contextsOptions();
  Tight.MaxContexts = 1;
  IPCPResult Ctx = analyze(SwapSource, Tight);
  IPCPResult Jump = analyze(SwapSource);

  ASSERT_TRUE(Ctx.ContextStudy.Enabled);
  EXPECT_TRUE(Ctx.ContextStudy.BudgetTripped);
  EXPECT_EQ(Ctx.Stats.get("ctx_budget_trips"), 1u);
  EXPECT_GT(Ctx.ContextStudy.SummaryContexts, 0u);

  // Under the budget the engine still refines against the baseline, so
  // the jump engine's facts all survive.
  auto JumpSet = allConstants(Jump);
  auto CtxSet = allConstants(Ctx);
  for (const auto &Fact : JumpSet)
    EXPECT_TRUE(CtxSet.count(Fact));
  if (CtxSet == JumpSet)
    EXPECT_EQ(Ctx.TotalConstantRefs, Jump.TotalConstantRefs);
}

TEST(ContextsEngine, UnboundedRecursionTerminates) {
  // f(n) calls f(n + 1): the exact-vector space is infinite; the budget
  // must flip the tail into one summary context and converge (depth-2
  // lattice bounds the re-queues).
  const char *Source = "proc f(n) {\n"
                       "  if (n < 3) { call f(n + 1); }\n"
                       "  print n;\n"
                       "}\n"
                       "proc main() { call f(0); }\n";
  // The ungated analysis cannot see that n < 3 bounds the chain, so the
  // exact-vector population is unbounded at *any* budget; the trip into
  // the summary context is what terminates — at 2 and at the default
  // 4096 alike.
  IPCPOptions Opts = contextsOptions();
  Opts.MaxContexts = 2;
  IPCPResult R = analyze(Source, Opts);
  ASSERT_TRUE(R.ContextStudy.Enabled);
  EXPECT_TRUE(R.ContextStudy.BudgetTripped);

  IPCPResult Wide = analyze(Source, contextsOptions());
  ASSERT_TRUE(Wide.ContextStudy.Enabled);
  EXPECT_TRUE(Wide.ContextStudy.BudgetTripped);

  // Both budgets keep every baseline fact (the refinement guarantee).
  IPCPResult Jump = analyze(Source);
  auto JumpSet = allConstants(Jump);
  for (const auto &Fact : JumpSet) {
    EXPECT_TRUE(allConstants(R).count(Fact));
    EXPECT_TRUE(allConstants(Wide).count(Fact));
  }
}

TEST(ContextsEngine, ReportCarriesContextStudy) {
  auto M = lowerOk(SwapSource);
  IPCPOptions Opts = contextsOptions();
  IPCPResult R = runIPCP(*M, Opts);

  AnalysisReport Rep;
  Rep.SourceName = "swap";
  Rep.M = M.get();
  Rep.Opts = &Opts;
  Rep.Single = &R;
  JsonValue Doc = buildAnalysisReport(Rep);

  const JsonValue *Options = Doc.find("options");
  ASSERT_NE(Options, nullptr);
  ASSERT_NE(Options->find("engine"), nullptr);
  EXPECT_EQ(Options->find("engine")->asString(), "contexts");
  ASSERT_NE(Options->find("max_contexts"), nullptr);

  const JsonValue *Result = Doc.find("result");
  ASSERT_NE(Result, nullptr);
  const JsonValue *Study = Result->find("context_study");
  ASSERT_NE(Study, nullptr);
  for (const char *Key :
       {"contexts", "summary_contexts", "evaluations", "reused", "merges",
        "entry_bytes", "budget_tripped", "baseline_val_constants",
        "val_constants", "val_constants_delta"})
    EXPECT_NE(Study->find(Key), nullptr) << Key;
  EXPECT_GE(Study->find("val_constants_delta")->asInt(), 0);

  // The jump engine must not emit the block.
  IPCPOptions JumpOpts;
  IPCPResult JR = runIPCP(*M, JumpOpts);
  Rep.Opts = &JumpOpts;
  Rep.Single = &JR;
  JsonValue JumpDoc = buildAnalysisReport(Rep);
  EXPECT_EQ(JumpDoc.find("result")->find("context_study"), nullptr);
}

TEST(ContextsEngine, GuardTripKeepsRunTotal) {
  IPCPOptions Opts = contextsOptions();
  Opts.Limits.MaxPropagationEvals = 1;
  IPCPResult R = analyze(SwapSource, Opts);
  EXPECT_TRUE(R.Status.Degraded);
  // Degraded but total: whatever survived is a sound subset.
  for (const auto &[Proc, Var, Value] : allConstants(R)) {
    (void)Proc;
    (void)Var;
    (void)Value;
  }
}

} // namespace
