//===- tests/DominatorTests.cpp - dominator & frontier tests --------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Dominators.h"
#include "ir/Traversal.h"

#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>

using namespace ipcp;
using namespace ipcp::test;

namespace {

BasicBlock *blockNamed(Procedure &P, const std::string &Prefix) {
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    if (BB->getName().rfind(Prefix, 0) == 0)
      return BB.get();
  ADD_FAILURE() << "no block with prefix " << Prefix;
  return nullptr;
}

TEST(Traversal, RPOStartsAtEntryAndCoversAll) {
  auto M = lowerOk(
      "proc main() { var x; if (x) { x = 1; } else { x = 2; } print x; }");
  Procedure *Main = getProc(*M, "main");
  std::vector<BasicBlock *> RPO = reversePostOrder(*Main);
  EXPECT_EQ(RPO.front(), Main->getEntryBlock());
  EXPECT_EQ(RPO.size(), Main->blocks().size());
}

TEST(Traversal, PostOrderVisitsSuccessorsFirst) {
  auto M = lowerOk("proc main() { var x; if (x) { x = 1; } print x; }");
  Procedure *Main = getProc(*M, "main");
  std::vector<BasicBlock *> PO = postOrder(*Main);
  EXPECT_EQ(PO.back(), Main->getEntryBlock());
}

TEST(Dominators, DiamondJoinDominatedByFork) {
  auto M = lowerOk(
      "proc main() { var x; if (x) { x = 1; } else { x = 2; } print x; }");
  Procedure *Main = getProc(*M, "main");
  DominatorTree DT(*Main);
  BasicBlock *Entry = Main->getEntryBlock();
  BasicBlock *Then = blockNamed(*Main, "if.then");
  BasicBlock *Else = blockNamed(*Main, "if.else");
  BasicBlock *Merge = blockNamed(*Main, "if.merge");

  EXPECT_EQ(DT.idom(Entry), nullptr);
  EXPECT_EQ(DT.idom(Then), Entry);
  EXPECT_EQ(DT.idom(Else), Entry);
  EXPECT_EQ(DT.idom(Merge), Entry) << "join is dominated by the fork only";
  EXPECT_TRUE(DT.dominates(Entry, Merge));
  EXPECT_FALSE(DT.dominates(Then, Merge));
  EXPECT_TRUE(DT.dominates(Merge, Merge)) << "dominance is reflexive";
}

TEST(Dominators, LoopHeaderDominatesBody) {
  auto M = lowerOk("proc main() { var x; while (x < 3) { x = x + 1; } }");
  Procedure *Main = getProc(*M, "main");
  DominatorTree DT(*Main);
  BasicBlock *Header = blockNamed(*Main, "while.header");
  BasicBlock *Body = blockNamed(*Main, "while.body");
  BasicBlock *ExitBB = blockNamed(*Main, "while.exit");
  EXPECT_EQ(DT.idom(Body), Header);
  EXPECT_EQ(DT.idom(ExitBB), Header);
  EXPECT_TRUE(DT.dominates(Header, Body));
  EXPECT_FALSE(DT.dominates(Body, Header));
}

TEST(DominanceFrontier, DiamondBranchesHaveMergeInFrontier) {
  auto M = lowerOk(
      "proc main() { var x; if (x) { x = 1; } else { x = 2; } print x; }");
  Procedure *Main = getProc(*M, "main");
  DominatorTree DT(*Main);
  DominanceFrontier DF(*Main, DT);
  BasicBlock *Then = blockNamed(*Main, "if.then");
  BasicBlock *Merge = blockNamed(*Main, "if.merge");
  const std::vector<BasicBlock *> &Frontier = DF.frontier(Then);
  EXPECT_NE(std::find(Frontier.begin(), Frontier.end(), Merge),
            Frontier.end());
  // The entry dominates everything: its frontier is empty.
  EXPECT_TRUE(DF.frontier(Main->getEntryBlock()).empty());
}

TEST(DominanceFrontier, LoopHeaderInItsOwnFrontier) {
  auto M = lowerOk("proc main() { var x; while (x < 3) { x = x + 1; } }");
  Procedure *Main = getProc(*M, "main");
  DominatorTree DT(*Main);
  DominanceFrontier DF(*Main, DT);
  BasicBlock *Header = blockNamed(*Main, "while.header");
  BasicBlock *Body = blockNamed(*Main, "while.body");
  const std::vector<BasicBlock *> &Frontier = DF.frontier(Body);
  EXPECT_NE(std::find(Frontier.begin(), Frontier.end(), Header),
            Frontier.end())
      << "back edge puts the header in the body's frontier";
}

//===----------------------------------------------------------------------===//
// Property: the computed dominators agree with the definition — B is
// dominated by A iff removing A disconnects B from the entry.
//===----------------------------------------------------------------------===//

bool reachableAvoiding(Procedure &P, BasicBlock *Avoid, BasicBlock *Target) {
  if (Avoid == P.getEntryBlock())
    return Target == P.getEntryBlock() && Target != Avoid;
  std::unordered_set<BasicBlock *> Seen{Avoid};
  std::deque<BasicBlock *> Queue;
  if (P.getEntryBlock() != Avoid) {
    Queue.push_back(P.getEntryBlock());
    Seen.insert(P.getEntryBlock());
  }
  while (!Queue.empty()) {
    BasicBlock *BB = Queue.front();
    Queue.pop_front();
    if (BB == Target)
      return true;
    for (BasicBlock *Succ : BB->successors())
      if (Seen.insert(Succ).second)
        Queue.push_back(Succ);
  }
  return false;
}

class DominatorDefinitionCheck : public ::testing::TestWithParam<const char *> {
};

TEST_P(DominatorDefinitionCheck, MatchesRemovalDefinition) {
  auto M = lowerOk(GetParam());
  for (const std::unique_ptr<Procedure> &P : M->procedures()) {
    DominatorTree DT(*P);
    for (const std::unique_ptr<BasicBlock> &A : P->blocks())
      for (const std::unique_ptr<BasicBlock> &B : P->blocks()) {
        if (A.get() == B.get())
          continue;
        bool Dominates = DT.dominates(A.get(), B.get());
        bool Disconnects = !reachableAvoiding(*P, A.get(), B.get());
        EXPECT_EQ(Dominates, Disconnects)
            << P->getName() << ": " << A->getName() << " vs " << B->getName();
      }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DominatorDefinitionCheck,
    ::testing::Values(
        "proc main() { var x; if (x) { x = 1; } else { x = 2; } print x; }",
        "proc main() { var x; while (x < 5) { if (x) { x = x + 2; } } }",
        "proc main() { var i, j; do i = 1, 3 { do j = 1, 3 { print i * j; } "
        "} }",
        "proc main() { var x; if (x) { if (x > 1) { x = 2; } } else { while "
        "(x < 0) { x = x + 1; } } print x; }",
        "proc main() { var x; if (x) { return; } print x; }"));

} // namespace
