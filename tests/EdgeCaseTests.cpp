//===- tests/EdgeCaseTests.cpp - assorted boundary behavior ---------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/SCCP.h"
#include "analysis/SSAConstruction.h"
#include "core/Pipeline.h"
#include "frontend/Lexer.h"
#include "interp/Interpreter.h"
#include "support/ConstantMath.h"
#include "workload/Study.h"

#include <gtest/gtest.h>

#include <limits>

using namespace ipcp;
using namespace ipcp::test;

namespace {

//===----------------------------------------------------------------------===//
// Frontend boundary behavior.
//===----------------------------------------------------------------------===//

TEST(LexerEdge, CarriageReturnsAreWhitespace) {
  DiagnosticsEngine Diags;
  Lexer Lex("a\r\nb", Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(ParserEdge, DoLoopRequiresBlock) {
  std::string Errs =
      parseErrors("proc main() { var i; do i = 1, 3 print i; }");
  EXPECT_NE(Errs.find("'{'"), std::string::npos);
}

TEST(ParserEdge, DeeplyNestedExpressionsParse) {
  std::string Expr = "1";
  for (int I = 0; I != 200; ++I)
    Expr = "(" + Expr + " + 1)";
  parseOk("proc main() { print " + Expr + "; }");
}

TEST(ParserEdge, DeeplyNestedBlocksParse) {
  std::string Body = "print 1;";
  for (int I = 0; I != 100; ++I)
    Body = "{ " + Body + " }";
  parseOk("proc main() { " + Body + " }");
}

TEST(SemaEdge, GlobalArrayAndScalarNamespacesShared) {
  EXPECT_NE(parseErrors("global a; global a[3];\nproc main() { }")
                .find("redefinition"),
            std::string::npos);
}

TEST(ParserEdge, EmptyCallArgumentListIsFine) {
  Program Prog = parseOk("proc f() { }\nproc main() { call f(); }");
  EXPECT_EQ(Prog.Procs.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Interpreter boundary behavior.
//===----------------------------------------------------------------------===//

TEST(InterpreterEdge, GlobalArraysZeroInitializedAndShared) {
  auto M = lowerOk("global buf[4];\n"
                   "proc fill(v) { buf[0] = v; buf[3] = v * 2; }\n"
                   "proc main() { print buf[3]; call fill(21); "
                   "print buf[0] + buf[3]; }");
  ExecutionResult R = interpret(*M);
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{0, 63}));
}

TEST(InterpreterEdge, NegativeDoStepWithoutLiteralUsesAscendingTest) {
  // A non-literal negative step makes the header test `i <= hi`, which
  // is immediately false for lo > hi: zero iterations (documented
  // behavior of the lowering).
  auto M = lowerOk("proc main() { var i, s; s = 0 - 2; do i = 5, 1, s { "
                   "print i; } print 99; }");
  ExecutionResult R = interpret(*M);
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{99}));
}

TEST(InterpreterEdge, PrintInsideRecursionOrdersDepthFirst) {
  auto M = lowerOk("proc f(n) { if (n <= 0) { return; } print n; "
                   "call f(n - 1); print 0 - n; }\n"
                   "proc main() { call f(2); }");
  ExecutionResult R = interpret(*M);
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{2, 1, -1, -2}));
}

TEST(InterpreterEdge, ShadowedGlobalUntouchedByLocalWrites) {
  auto M = lowerOk("global g;\n"
                   "proc peek() { print g; }\n"
                   "proc main() { var g; g = 7; call peek(); print g; }");
  ExecutionResult R = interpret(*M);
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{0, 7}));
}

//===----------------------------------------------------------------------===//
// SCCP executable-edge queries.
//===----------------------------------------------------------------------===//

TEST(SCCPEdge, EdgeQueriesMatchBlockReachability) {
  auto M = lowerOk("proc main() { var x; x = 0; if (x) { print 1; } else "
                   "{ print 2; } }");
  auto Clone = M->clone();
  CallGraph CG(*Clone);
  ModRefInfo MRI = ModRefInfo::compute(*Clone, CG);
  Procedure *Main = getProc(*Clone, "main");
  constructSSA(*Main, MRI);
  SCCPResult R = runSCCP(*Main);
  unsigned ExecutableEdges = 0, Edges = 0;
  for (const std::unique_ptr<BasicBlock> &BB : Main->blocks())
    for (BasicBlock *Succ : BB->successors()) {
      ++Edges;
      if (R.isExecutableEdge(BB.get(), Succ)) {
        ++ExecutableEdges;
        EXPECT_TRUE(R.isExecutable(BB.get()));
        EXPECT_TRUE(R.isExecutable(Succ));
      }
    }
  EXPECT_LT(ExecutableEdges, Edges) << "the dead arm's edge is not taken";
}

//===----------------------------------------------------------------------===//
// Pipeline/statistics consistency.
//===----------------------------------------------------------------------===//

TEST(StudyEdge, RunCellMatchesDirectAnalysis) {
  const SuiteProgram *Prog = findSuiteProgram("trfd");
  ASSERT_NE(Prog, nullptr);
  auto M = loadSuiteModule(*Prog);
  EXPECT_EQ(runCell(*Prog, IPCPOptions()), runIPCP(*M).TotalConstantRefs);
}

TEST(PipelineEdge, BindingGraphOptionMatchesOnEveryClass) {
  auto M = lowerOk("global g;\n"
                   "proc f(a, b) { g = a; print b + g; }\n"
                   "proc main() { g = 1; call f(2, 3); call f(2, 4); }");
  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraproceduralConstant,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial}) {
    IPCPOptions A;
    A.ForwardKind = Kind;
    IPCPOptions B = A;
    B.UseBindingGraphPropagator = true;
    EXPECT_EQ(runIPCP(*M, A).TotalConstantRefs,
              runIPCP(*M, B).TotalConstantRefs)
        << jumpFunctionKindName(Kind);
  }
}

TEST(PipelineEdge, MaxExprNodesIsRespected) {
  // A long polynomial chain: with a tiny cap the jump function declines
  // (bottom), with a large one it propagates.
  std::string Chain = "x";
  for (int I = 0; I != 40; ++I)
    Chain = "(" + Chain + " * x + 1)";
  auto M = lowerOk("proc use(v) { print v; }\n"
                   "proc mid(x) { call use(" + Chain + "); }\n"
                   "proc main() { call mid(1); }");
  IPCPOptions Small;
  Small.MaxExprNodes = 4;
  IPCPOptions Large;
  Large.MaxExprNodes = 4096;
  unsigned SmallRefs = runIPCP(*M, Small).TotalConstantRefs;
  unsigned LargeRefs = runIPCP(*M, Large).TotalConstantRefs;
  EXPECT_GT(LargeRefs, SmallRefs);
}

//===----------------------------------------------------------------------===//
// Overflow agreement: ConstantMath, SCCP folding, jump-function
// composition, and the interpreter must all decline/trap on the same
// boundary cases, never silently wrap.
//===----------------------------------------------------------------------===//

constexpr int64_t I64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t I64Max = std::numeric_limits<int64_t>::max();

TEST(ConstantMathEdge, DivisionBoundariesDecline) {
  EXPECT_EQ(checkedDiv(I64Min, -1), std::nullopt);
  EXPECT_EQ(checkedRem(I64Min, -1), std::nullopt);
  EXPECT_EQ(checkedDiv(42, 0), std::nullopt);
  EXPECT_EQ(checkedRem(42, 0), std::nullopt);
  EXPECT_EQ(checkedNeg(I64Min), std::nullopt);
  // Just inside the boundary both succeed.
  EXPECT_EQ(checkedDiv(I64Min, 1), I64Min);
  EXPECT_EQ(checkedRem(I64Min, -2), std::optional<int64_t>(0));
  EXPECT_EQ(checkedDiv(I64Max, -1), std::optional<int64_t>(-I64Max));
}

TEST(ConstantMathEdge, AdditionAndMultiplicationBoundaries) {
  EXPECT_EQ(checkedAdd(I64Max, 1), std::nullopt);
  EXPECT_EQ(checkedAdd(I64Max, 0), I64Max);
  EXPECT_EQ(checkedSub(I64Min, 1), std::nullopt);
  EXPECT_EQ(checkedSub(I64Min, 0), I64Min);
  EXPECT_EQ(checkedMul(int64_t(1) << 62, 2), std::nullopt);
  EXPECT_EQ(checkedMul(I64Min, -1), std::nullopt);
}

TEST(OverflowAgreement, AdditionOverflowNeitherFoldedNorExecuted) {
  // a is a known constant, but a + a overflows: SCCP must leave b
  // unfolded (only the two loads of a count as constant refs) and the
  // interpreter must trap rather than wrap.
  auto M = lowerOk("proc main() { var a; var b;\n"
                   "  a = 4611686018427387904;\n"
                   "  b = a + a;\n"
                   "  print b; }");
  IPCPResult R = runIPCP(*M);
  EXPECT_TRUE(R.Status.ok());
  EXPECT_EQ(R.TotalConstantRefs, 2u);

  ExecutionResult Exec = interpret(*M);
  EXPECT_EQ(Exec.TheStatus, ExecutionResult::Status::Trap);
  EXPECT_TRUE(Exec.Output.empty());
}

TEST(OverflowAgreement, Int64MinDivMinusOneTrapsAndIsNotFolded) {
  // INT64_MIN is only expressible as an arithmetic result; the analysis
  // folds m itself but must decline m / -1 (the one 2's-complement
  // division that overflows).
  auto M = lowerOk("proc use(v) { print v; }\n"
                   "proc main() { var m;\n"
                   "  m = 0 - 9223372036854775807 - 1;\n"
                   "  call use(m / (0 - 1)); }");
  IPCPResult R = runIPCP(*M);
  EXPECT_TRUE(R.Status.ok());
  const ProcedureResult *Use = R.findProc("use");
  ASSERT_NE(Use, nullptr);
  for (const auto &[Name, Value] : Use->EntryConstants)
    EXPECT_NE(Name, "v") << "declined division must not reach CONSTANTS(use)";

  ExecutionResult Exec = interpret(*M);
  EXPECT_EQ(Exec.TheStatus, ExecutionResult::Status::Trap);
}

TEST(OverflowAgreement, RemainderByZeroTrapsAndIsNotFolded) {
  auto M = lowerOk("proc use(v) { print v; }\n"
                   "proc main() { var x;\n"
                   "  x = 5;\n"
                   "  call use(x % (x - x)); }");
  IPCPResult R = runIPCP(*M);
  EXPECT_TRUE(R.Status.ok());
  const ProcedureResult *Use = R.findProc("use");
  ASSERT_NE(Use, nullptr);
  for (const auto &[Name, Value] : Use->EntryConstants)
    EXPECT_NE(Name, "v") << "x % 0 must not fold to a constant";

  ExecutionResult Exec = interpret(*M);
  EXPECT_EQ(Exec.TheStatus, ExecutionResult::Status::Trap);
  EXPECT_FALSE(Exec.TrapMessage.empty());
}

TEST(OverflowAgreement, JumpFunctionCompositionDeclinesOverflow) {
  // mid's formal v is the constant 2^62; composing leaf's jump function
  // w = v + v overflows, so CONSTANTS(mid) keeps v while CONSTANTS(leaf)
  // must not claim w.
  auto M = lowerOk("proc leaf(w) { print w; }\n"
                   "proc mid(v) { call leaf(v + v); }\n"
                   "proc main() { call mid(4611686018427387904); }");
  IPCPResult R = runIPCP(*M);
  EXPECT_TRUE(R.Status.ok());

  const ProcedureResult *Mid = R.findProc("mid");
  ASSERT_NE(Mid, nullptr);
  bool MidHasV = false;
  for (const auto &[Name, Value] : Mid->EntryConstants)
    if (Name == "v") {
      MidHasV = true;
      EXPECT_EQ(Value, int64_t(1) << 62);
    }
  EXPECT_TRUE(MidHasV);

  const ProcedureResult *Leaf = R.findProc("leaf");
  ASSERT_NE(Leaf, nullptr);
  for (const auto &[Name, Value] : Leaf->EntryConstants)
    EXPECT_NE(Name, "w") << "overflowing composition must go to bottom";

  // The binding-graph formulation must agree on the same composition.
  IPCPOptions BG;
  BG.UseBindingGraphPropagator = true;
  IPCPResult RB = runIPCP(*M, BG);
  EXPECT_EQ(RB.TotalEntryConstants, R.TotalEntryConstants);
  EXPECT_EQ(RB.TotalConstantRefs, R.TotalConstantRefs);
}

TEST(PipelineEdge, IrrelevantPlusCountedConsistent) {
  auto M = lowerOk("global g, h;\n"
                   "proc f() { print g; }\n"
                   "proc main() { g = 1; h = 2; call f(); }");
  IPCPResult R = runIPCP(*M);
  // f knows g (used) and... h is not an extended formal of f (f never
  // touches it), so CONSTANTS(f) = {g} with zero irrelevant entries.
  const ProcedureResult *F = R.findProc("f");
  EXPECT_EQ(F->EntryConstants.size(), 1u);
  EXPECT_EQ(F->IrrelevantConstants, 0u);
}

} // namespace
