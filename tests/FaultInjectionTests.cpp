//===- tests/FaultInjectionTests.cpp - chaos-hardening tests --------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The robustness layer (docs/ROBUSTNESS.md): the fault-plan grammar and
// its deterministic firing semantics, injection at the FileIO and
// ContentStore fault points, torn-write recovery via the startup scrub
// (temp sweep, corrupt-object quarantine, dangling-ref drop), and the
// service failure boundary — injected analysis faults become structured
// retryable errors and never poison the session cache.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "core/ServiceEngine.h"
#include "core/ShardedService.h"
#include "support/ContentStore.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "workload/Programs.h"
#include "workload/ServiceWorkload.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

/// Installs a plan on the process-wide injector for one test and always
/// clears it on exit — a leaked plan would fail every later test.
struct PlanGuard {
  explicit PlanGuard(const std::string &Spec) {
    std::string Error;
    Installed = faultInjector().installPlan(Spec, &Error);
    EXPECT_TRUE(Installed) << Error;
  }
  ~PlanGuard() { faultInjector().clear(); }
  bool Installed = false;
};

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

//===----------------------------------------------------------------------===//
// Plan grammar and firing semantics
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, GlobMatching) {
  EXPECT_TRUE(faultPatternMatches("store.write.object", "store.write.object"));
  EXPECT_TRUE(faultPatternMatches("store.write.*", "store.write.object"));
  EXPECT_TRUE(faultPatternMatches("store.*", "store.commit.ref"));
  EXPECT_TRUE(faultPatternMatches("*", "anything.at.all"));
  EXPECT_TRUE(faultPatternMatches("*.write.*", "store.write.ref"));
  EXPECT_FALSE(faultPatternMatches("store.write.*", "store.read.ref"));
  EXPECT_FALSE(faultPatternMatches("store.write", "store.write.object"));
  EXPECT_FALSE(faultPatternMatches("", "store.write.object"));
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  std::string Error;
  FaultInjector &FI = faultInjector();
  EXPECT_FALSE(FI.installPlan(":nth=1", &Error)); // empty pattern
  EXPECT_FALSE(FI.installPlan("a.b:bogus=1", &Error));
  EXPECT_FALSE(FI.installPlan("a.b:nth=x", &Error));
  EXPECT_FALSE(FI.installPlan("a.b:nth=0", &Error));
  EXPECT_FALSE(FI.installPlan("a.b:period=0", &Error));
  EXPECT_FALSE(FI.installPlan("a.b:nth", &Error));
  EXPECT_FALSE(FI.active()) << "a failed install must leave no plan";
  // An empty spec is a clear, not an error.
  EXPECT_TRUE(FI.installPlan("", &Error));
  EXPECT_FALSE(FI.active());
}

TEST(FaultPlanTest, NthFiresExactlyOnce) {
  PlanGuard Guard("p:nth=3");
  std::vector<bool> Fired;
  for (int I = 0; I != 6; ++I)
    Fired.push_back(faultInjector().shouldFail("p"));
  EXPECT_EQ(Fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
}

TEST(FaultPlanTest, PeriodStartAndTimes) {
  {
    // Default start = period: fires at 3, 6, 9, ...
    PlanGuard Guard("p:period=3");
    std::vector<bool> Fired;
    for (int I = 0; I != 9; ++I)
      Fired.push_back(faultInjector().shouldFail("p"));
    EXPECT_EQ(Fired, (std::vector<bool>{false, false, true, false, false,
                                        true, false, false, true}));
  }
  {
    // Explicit start shifts the phase; times caps the injections.
    PlanGuard Guard("p:period=2:start=1:times=2");
    std::vector<bool> Fired;
    for (int I = 0; I != 8; ++I)
      Fired.push_back(faultInjector().shouldFail("p"));
    EXPECT_EQ(Fired, (std::vector<bool>{true, false, true, false, false,
                                        false, false, false}));
  }
  {
    // No keys: every matching operation fails.
    PlanGuard Guard("p");
    EXPECT_TRUE(faultInjector().shouldFail("p"));
    EXPECT_TRUE(faultInjector().shouldFail("p"));
    EXPECT_FALSE(faultInjector().shouldFail("q"));
  }
}

TEST(FaultPlanTest, RulesCountIndependentlyFirstFiringWins) {
  PlanGuard Guard("a.*:nth=2;*.x:nth=2");
  std::string Message;
  EXPECT_FALSE(faultInjector().shouldFail("a.x")); // match 1 for both
  EXPECT_TRUE(faultInjector().shouldFail("a.x", &Message));
  // Both rules hit their 2nd match; the first rule fires and is named.
  EXPECT_NE(Message.find("injected fault: a.x"), std::string::npos);
  EXPECT_NE(Message.find("a.*"), std::string::npos);
  // The second rule's match was still counted: its nth=2 chance is
  // spent, so a later *.x match does not fire it again.
  EXPECT_FALSE(faultInjector().shouldFail("b.x"));
  FaultInjector::Totals T = faultInjector().totals();
  EXPECT_EQ(T.Checked, 3u);
  EXPECT_EQ(T.Injected, 1u);
}

TEST(FaultPlanTest, ReplaySequencesAreIdentical) {
  auto run = [] {
    PlanGuard Guard("p.*:period=3;p.b:nth=5");
    std::vector<bool> Fired;
    const char *Points[] = {"p.a", "p.b", "p.a", "p.b", "p.b", "q",
                            "p.a", "p.b", "p.b", "p.a", "p.b", "p.a"};
    for (const char *Point : Points)
      Fired.push_back(faultInjector().shouldFail(Point));
    return Fired;
  };
  EXPECT_EQ(run(), run()) << "same plan + same op sequence must inject "
                             "at the same places";
}

TEST(FaultPlanTest, StatsJsonCountsRulesAndPoints) {
  PlanGuard Guard("p.*:period=2");
  faultInjector().shouldFail("p.a");
  faultInjector().shouldFail("p.b");
  faultInjector().shouldFail("p.b");
  faultInjector().shouldFail("p.b");
  JsonValue Stats = faultInjector().statsJson();
  EXPECT_EQ(Stats.find("plan")->asString(), "p.*:period=2");
  EXPECT_EQ(Stats.find("checked")->asInt(), 4);
  EXPECT_EQ(Stats.find("injected")->asInt(), 2);
  const JsonValue *Points = Stats.find("points");
  ASSERT_NE(Points, nullptr);
  ASSERT_NE(Points->find("p.b"), nullptr);
  EXPECT_EQ(Points->find("p.b")->asInt(), 2);
}

//===----------------------------------------------------------------------===//
// I/O layer injection
//===----------------------------------------------------------------------===//

TEST(FaultInjectionTest, FileIOFaultsSurfaceAsErrors) {
  std::string Path = ::testing::TempDir() + "/ipcp_fault_fileio.txt";
  {
    PlanGuard Guard("fileio.write");
    std::string Error;
    EXPECT_FALSE(writeStringToFile(Path, "doomed", &Error));
    EXPECT_NE(Error.find("injected fault: fileio.write"), std::string::npos);
  }
  ASSERT_TRUE(writeStringToFile(Path, "survives"));
  {
    PlanGuard Guard("fileio.read:nth=1");
    std::string Out, Error;
    EXPECT_FALSE(readFileToString(Path, Out, &Error));
    // nth=1 is spent; the retry succeeds.
    EXPECT_TRUE(readFileToString(Path, Out, &Error));
    EXPECT_EQ(Out, "survives");
  }
  std::filesystem::remove(Path);
}

TEST(FaultInjectionTest, StoreWriteFaultFailsCleanly) {
  std::string Dir = freshDir("ipcp-fault-store-write");
  ContentStore Store(Dir);
  PlanGuard Guard("store.write.object");
  std::string Error;
  EXPECT_TRUE(Store.put("blocked bytes", &Error).empty());
  EXPECT_NE(Error.find("injected fault"), std::string::npos);
  EXPECT_GE(Store.stats().Errors, 1u);
  // A write-point fault fails before the temp file exists: no litter.
  EXPECT_FALSE(std::filesystem::exists(Dir + "/objects") &&
               !std::filesystem::is_empty(Dir + "/objects"));
  std::filesystem::remove_all(Dir);
}

TEST(FaultInjectionTest, TornCommitLeavesTmpAndScrubSweeps) {
  std::string Dir = freshDir("ipcp-fault-store-torn");
  ContentStore Store(Dir);
  ASSERT_FALSE(Store.putNamed("name", "good bytes").empty());
  {
    // The commit point fires after the temp write, before the rename —
    // a simulated crash mid-commit.
    PlanGuard Guard("store.commit.object");
    EXPECT_TRUE(Store.put("torn bytes").empty());
  }
  unsigned TmpFiles = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(Dir + "/objects"))
    if (Entry.path().filename().string().find(".tmp.") != std::string::npos)
      ++TmpFiles;
  ASSERT_EQ(TmpFiles, 1u) << "torn commit must leave its temp file";

  ContentStore::ScrubReport Report = Store.scrub();
  EXPECT_TRUE(Report.Ok);
  EXPECT_EQ(Report.TmpSwept, 1u);
  EXPECT_EQ(Report.Quarantined, 0u);
  EXPECT_EQ(Report.DanglingDropped, 0u);
  EXPECT_EQ(Store.stats().TmpSwept, 1u);

  // The store still serves, and the torn object can be re-put.
  std::string Bytes;
  EXPECT_TRUE(Store.get("name", Bytes));
  EXPECT_EQ(Bytes, "good bytes");
  EXPECT_FALSE(Store.put("torn bytes").empty());
  std::filesystem::remove_all(Dir);
}

TEST(FaultInjectionTest, ScrubQuarantinesCorruptAndDropsDanglingRefs) {
  std::string Dir = freshDir("ipcp-fault-store-scrub");
  std::string Key;
  {
    ContentStore Store(Dir);
    Key = Store.putNamed("name", "precious bytes");
    ASSERT_FALSE(Key.empty());
    // Rot the blob on disk behind the store's back.
    std::ofstream Out(Store.objectPath(Key), std::ios::binary);
    Out << "precious bytez";
  }
  // Reopen: the startup scrub re-hashes every object, moves the rotten
  // one to quarantine/ (kept as evidence, never deleted), then drops
  // the ref that pointed at it.
  ContentStore Store(Dir);
  ContentStore::Stats Stats = Store.stats();
  EXPECT_EQ(Stats.ScrubRuns, 1u);
  EXPECT_EQ(Stats.Quarantined, 1u);
  EXPECT_EQ(Stats.DanglingDropped, 1u);
  EXPECT_TRUE(std::filesystem::exists(Store.quarantinePath(Key + ".blob")));
  std::string Bytes;
  EXPECT_FALSE(Store.get("name", Bytes)) << "a quarantined object reads "
                                            "as a clean miss";
  // The name is reusable: recovery degrades to a cold start, not a
  // poisoned store.
  EXPECT_FALSE(Store.putNamed("name", "precious bytes").empty());
  EXPECT_TRUE(Store.get("name", Bytes));
  EXPECT_EQ(Bytes, "precious bytes");
  std::filesystem::remove_all(Dir);
}

TEST(FaultInjectionTest, ScrubOnOpenSweepsStaleTmp) {
  std::string Dir = freshDir("ipcp-fault-store-stale");
  {
    ContentStore Store(Dir);
    ASSERT_FALSE(Store.putNamed("name", "bytes").empty());
  }
  // A crashed writer's leftovers, planted by hand.
  ASSERT_TRUE(writeStringToFile(Dir + "/objects/dead.blob.tmp.1.2", "junk"));
  ASSERT_TRUE(writeStringToFile(Dir + "/refs/dead.ref.tmp.3.4", "junk"));
  ContentStore Store(Dir);
  EXPECT_EQ(Store.stats().TmpSwept, 2u);
  EXPECT_FALSE(std::filesystem::exists(Dir + "/objects/dead.blob.tmp.1.2"));
  EXPECT_FALSE(std::filesystem::exists(Dir + "/refs/dead.ref.tmp.3.4"));
  std::string Bytes;
  EXPECT_TRUE(Store.get("name", Bytes));
  std::filesystem::remove_all(Dir);
}

TEST(FaultInjectionTest, DurableStoreRoundTrips) {
  std::string Dir = freshDir("ipcp-fault-store-durable");
  ContentStore::Options Opts;
  Opts.Durable = true;
  ContentStore Store(Dir, Opts);
  ASSERT_FALSE(Store.putNamed("name", "fsynced bytes").empty());
  std::string Bytes;
  EXPECT_TRUE(Store.get("name", Bytes));
  EXPECT_EQ(Bytes, "fsynced bytes");
  {
    // In durable mode the fsync itself is a fault point; a failed sync
    // must abort the commit and remove the temp file.
    PlanGuard Guard("store.fsync:nth=1");
    EXPECT_TRUE(Store.put("unsynced bytes").empty());
    ContentStore::ScrubReport Report = Store.scrub();
    EXPECT_EQ(Report.TmpSwept, 0u) << "failed fsync must clean up its "
                                      "temp file";
  }
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Service failure boundary
//===----------------------------------------------------------------------===//

ServiceEngine::Config engineConfig() {
  ServiceEngine::Config Conf;
  Conf.ScrubTimings = true;
  Conf.SuiteResolver = [](const std::string &Name, std::string &Out) {
    const SuiteProgram *Prog = findSuiteProgram(Name);
    if (!Prog)
      return false;
    Out = Prog->Source;
    return true;
  };
  return Conf;
}

ServiceRequest parseOk(const ServiceEngine &Engine, const std::string &Line) {
  ServiceRequest Req;
  std::string Code, Error;
  EXPECT_TRUE(Engine.parseRequestLine(Line, Req, &Code, &Error))
      << Code << ": " << Error;
  return Req;
}

TEST(ServiceBoundaryTest, InjectedFaultBecomesRetryableInternalError) {
  ServiceEngine Engine(engineConfig());
  ServiceRequest Req = parseOk(
      Engine, R"({"op":"analyze","suite":"simple","session":"s"})");

  JsonValue Ok1 = Engine.analyze(Req);
  ASSERT_EQ(Ok1.find("status")->asString(), "ok");

  JsonValue Failed;
  {
    PlanGuard Guard("service.analyze:nth=1");
    Failed = Engine.analyze(Req);
  }
  ASSERT_EQ(Failed.find("status")->asString(), "error");
  const JsonValue *Error = Failed.find("error");
  ASSERT_NE(Error, nullptr);
  EXPECT_EQ(Error->find("code")->asString(), "internal");
  EXPECT_NE(Error->find("message")->asString().find("injected fault"),
            std::string::npos);
  ASSERT_NE(Error->find("retryable"), nullptr);
  EXPECT_TRUE(Error->find("retryable")->asBool());
  EXPECT_EQ(Engine.snapshot().InternalErrors, 1u);

  // The boundary held: the session survives and the retried request
  // produces the same (normalized) report as the pre-fault run.
  JsonValue Ok2 = Engine.analyze(Req);
  ASSERT_EQ(Ok2.find("status")->asString(), "ok");
  normalizeReportForDiff(Ok1);
  normalizeReportForDiff(Ok2);
  EXPECT_EQ(Ok1.dump(), Ok2.dump());
}

TEST(ServiceBoundaryTest, FaultedRunNeverPoisonsThePersistTier) {
  std::string Dir = freshDir("ipcp-fault-engine-store");
  ServiceEngine::Config Conf = engineConfig();
  Conf.CacheDir = Dir;
  ServiceRequest Req;
  {
    ServiceEngine Engine(Conf);
    Req = parseOk(Engine,
                  R"({"op":"analyze","suite":"simple","session":"s"})");
    // Every analysis faults: nothing commits, so nothing may persist.
    PlanGuard Guard("service.analyze");
    EXPECT_EQ(Engine.analyze(Req).find("status")->asString(), "error");
    EXPECT_EQ(Engine.shutdownFlush(), 0u);
  }
  EXPECT_FALSE(std::filesystem::exists(Dir + "/refs"))
      << "a failed run must not reach the write-behind tier";
  {
    // Same store, healthy run: persists fine.
    ServiceEngine Engine(Conf);
    EXPECT_EQ(Engine.analyze(Req).find("status")->asString(), "ok");
    EXPECT_EQ(Engine.shutdownFlush(), 1u);
  }
  std::filesystem::remove_all(Dir);
}

TEST(ServiceBoundaryTest, ErrorCodesCarryTheRetryableContract) {
  JsonValue Busy = serviceErrorObject("busy", "queue full");
  EXPECT_TRUE(Busy.find("retryable")->asBool());
  JsonValue Internal = serviceErrorObject("internal", "boom");
  EXPECT_TRUE(Internal.find("retryable")->asBool());
  for (const char *Code :
       {"bad-json", "bad-request", "unknown-suite", "source-error"}) {
    JsonValue Err = serviceErrorObject(Code, "permanent");
    ASSERT_NE(Err.find("retryable"), nullptr) << Code;
    EXPECT_FALSE(Err.find("retryable")->asBool()) << Code;
  }
}

//===----------------------------------------------------------------------===//
// Sharded replay under faults
//===----------------------------------------------------------------------===//

std::vector<std::string> replayLines(ShardedService &Svc,
                                     const std::vector<std::string> &Lines) {
  std::unique_ptr<ShardedService::Stream> St = Svc.openStream();
  std::vector<std::string> Out;
  std::thread Consumer([&] {
    std::string Response;
    while (St->popResponse(Response))
      Out.push_back(Response);
  });
  for (const std::string &Line : Lines)
    if (Svc.submitLine(*St, Line))
      break;
  Svc.finishStream(*St);
  Consumer.join();
  return Out;
}

TEST(ShardedChaosTest, StoreFaultReplaysAreByteIdenticalAcrossShards) {
  ServiceLogConfig LogConf;
  LogConf.Session = "chaos";
  LogConf.SessionCount = 3;
  LogConf.Seed = 17;
  LogConf.Requests = 30;
  LogConf.EndWithStats = false;
  LogConf.EndWithShutdown = false;
  std::vector<std::string> Lines = generateServiceLog(LogConf);

  auto replay = [&](unsigned Shards, const std::string &Dir) {
    PlanGuard Guard("store.commit.*:period=2;store.read.*:period=3");
    ShardedService::Config Conf;
    Conf.Shards = Shards;
    Conf.Jobs = 2;
    Conf.Engine = engineConfig();
    Conf.Engine.MaxSessions = 2;
    Conf.Engine.CacheDir = freshDir(Dir);
    ShardedService Svc(Conf);
    std::vector<std::string> Out = replayLines(Svc, Lines);
    EXPECT_GT(faultInjector().totals().Injected, 0u);
    std::filesystem::remove_all(Conf.Engine.CacheDir);
    return Out;
  };

  std::vector<std::string> One = replay(1, "ipcp-chaos-s1");
  EXPECT_EQ(One.size(), Lines.size()) << "every line answered under faults";
  EXPECT_EQ(One, replay(1, "ipcp-chaos-s1b")) << "identical plan, "
                                                 "identical bytes";
  EXPECT_EQ(One, replay(4, "ipcp-chaos-s4")) << "store faults live on the "
                                                "reader thread; shard count "
                                                "must not shift them";
}

} // namespace
