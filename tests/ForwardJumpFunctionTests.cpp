//===- tests/ForwardJumpFunctionTests.cpp - forward JF class tests --------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/ForwardJumpFunctions.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// One program exercising every flavor of actual parameter:
///   call q(5,            -- literal
///          k,            -- intraprocedural constant (k = 10)
///          a,            -- pass-through of caller formal a
///          a * 2 + 1,    -- polynomial of caller formal a
///          r)            -- read: unknowable
/// plus a global that is constant at the site and one that is passed
/// through.
const char *Program = R"(
global gc, gp;
proc q(l, i, p, y, u) {
  print l + i + p + y + u + gc + gp;
}
proc caller(a) {
  var k, r;
  k = 10;
  read r;
  gc = 77;
  call q(5, k, a, a * 2 + 1, r);
}
proc main() {
  call caller(4);
}
)";

struct FJFFixture {
  std::unique_ptr<Module> M;
  std::unique_ptr<CallGraph> CG;
  SSAMap SSA;
  SymExprContext Ctx;
  std::unique_ptr<ModRefInfo> MRI;
  std::unique_ptr<ReturnJumpFunctions> RJFs;

  explicit FJFFixture(const std::string &Source) {
    M = lowerOk(Source);
    CG = std::make_unique<CallGraph>(*M);
    MRI = std::make_unique<ModRefInfo>(ModRefInfo::compute(*M, *CG));
    for (const std::unique_ptr<Procedure> &P : M->procedures())
      SSA.emplace(P.get(), constructSSA(*P, *MRI));
    RJFs = std::make_unique<ReturnJumpFunctions>(
        ReturnJumpFunctions::build(*CG, *MRI, SSA, Ctx));
  }

  /// Jump functions at the unique call site inside \p Caller.
  const CallSiteJumpFunctions &site(ForwardJumpFunctions &FJFs,
                                    const std::string &Caller) {
    const std::vector<CallInst *> &Sites =
        CG->callSitesIn(getProc(*M, Caller));
    EXPECT_EQ(Sites.size(), 1u);
    return FJFs.at(Sites.front());
  }

  ForwardJumpFunctions build(JumpFunctionKind Kind) {
    return ForwardJumpFunctions::build(*CG, *MRI, SSA, RJFs.get(), Ctx, Kind);
  }
};

TEST(ForwardJF, LiteralClassSeesOnlyLiterals) {
  FJFFixture F(Program);
  ForwardJumpFunctions FJFs = F.build(JumpFunctionKind::Literal);
  const CallSiteJumpFunctions &JFs = F.site(FJFs, "caller");
  ASSERT_EQ(JFs.Formals.size(), 5u);
  ASSERT_TRUE(JFs.Formals[0].isConstant());
  EXPECT_EQ(JFs.Formals[0].expr()->getConst(), 5);
  EXPECT_TRUE(JFs.Formals[1].isBottom()) << "computed constant invisible";
  EXPECT_TRUE(JFs.Formals[2].isBottom());
  EXPECT_TRUE(JFs.Formals[3].isBottom());
  EXPECT_TRUE(JFs.Formals[4].isBottom());
  for (const auto &[G, JF] : JFs.Globals)
    EXPECT_TRUE(JF.isBottom())
        << "the literal class misses implicitly passed globals";
}

TEST(ForwardJF, IntraproceduralConstantClass) {
  FJFFixture F(Program);
  ForwardJumpFunctions FJFs =
      F.build(JumpFunctionKind::IntraproceduralConstant);
  const CallSiteJumpFunctions &JFs = F.site(FJFs, "caller");
  EXPECT_TRUE(JFs.Formals[0].isConstant());
  ASSERT_TRUE(JFs.Formals[1].isConstant()) << "gcp(k, s) = 10";
  EXPECT_EQ(JFs.Formals[1].expr()->getConst(), 10);
  EXPECT_TRUE(JFs.Formals[2].isBottom()) << "pass-through not allowed yet";
  EXPECT_TRUE(JFs.Formals[3].isBottom());
  EXPECT_TRUE(JFs.Formals[4].isBottom());
  // gc = 77 at the site is a constant global; gp is only pass-through.
  bool SawGc = false, SawGp = false;
  for (const auto &[G, JF] : JFs.Globals) {
    if (G->getName() == "gc") {
      SawGc = true;
      ASSERT_TRUE(JF.isConstant());
      EXPECT_EQ(JF.expr()->getConst(), 77);
    }
    if (G->getName() == "gp") {
      SawGp = true;
      EXPECT_TRUE(JF.isBottom());
    }
  }
  EXPECT_TRUE(SawGc);
  EXPECT_TRUE(SawGp);
}

TEST(ForwardJF, PassThroughClass) {
  FJFFixture F(Program);
  ForwardJumpFunctions FJFs = F.build(JumpFunctionKind::PassThrough);
  const CallSiteJumpFunctions &JFs = F.site(FJFs, "caller");
  EXPECT_TRUE(JFs.Formals[0].isConstant());
  EXPECT_TRUE(JFs.Formals[1].isConstant());
  ASSERT_TRUE(JFs.Formals[2].isPassThrough());
  EXPECT_EQ(JFs.Formals[2].expr()->getFormal()->getName(), "a");
  EXPECT_TRUE(JFs.Formals[3].isBottom()) << "polynomials not allowed yet";
  EXPECT_TRUE(JFs.Formals[4].isBottom());
  for (const auto &[G, JF] : JFs.Globals)
    if (G->getName() == "gp") {
      ASSERT_TRUE(JF.isPassThrough());
      EXPECT_EQ(JF.expr()->getFormal()->getName(), "gp");
    }
}

TEST(ForwardJF, PolynomialClass) {
  FJFFixture F(Program);
  ForwardJumpFunctions FJFs = F.build(JumpFunctionKind::Polynomial);
  const CallSiteJumpFunctions &JFs = F.site(FJFs, "caller");
  ASSERT_FALSE(JFs.Formals[3].isBottom());
  EXPECT_EQ(JFs.Formals[3].str(), "((a * 2) + 1)");
  ASSERT_EQ(JFs.Formals[3].support().size(), 1u);
  EXPECT_EQ(JFs.Formals[3].support()[0]->getName(), "a");
  EXPECT_TRUE(JFs.Formals[4].isBottom()) << "read is unknowable everywhere";
}

TEST(ForwardJF, ClassesAreMonotonicallyMorePrecise) {
  // Every non-bottom jump function of a weaker class appears identically
  // in the stronger class (paper Section 3.1: the constant sets nest).
  FJFFixture F(Program);
  JumpFunctionKind Kinds[] = {
      JumpFunctionKind::Literal, JumpFunctionKind::IntraproceduralConstant,
      JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial};
  for (unsigned K = 0; K + 1 != 4; ++K) {
    ForwardJumpFunctions Weak = F.build(Kinds[K]);
    ForwardJumpFunctions Strong = F.build(Kinds[K + 1]);
    const CallSiteJumpFunctions &WeakJFs = F.site(Weak, "caller");
    const CallSiteJumpFunctions &StrongJFs = F.site(Strong, "caller");
    for (unsigned I = 0; I != WeakJFs.Formals.size(); ++I)
      if (!WeakJFs.Formals[I].isBottom()) {
        EXPECT_EQ(WeakJFs.Formals[I].expr(), StrongJFs.Formals[I].expr());
      }
  }
}

TEST(ForwardJF, ReturnJumpFunctionConstantFeedsGcp) {
  // Paper Section 3.2: the second evaluation, during forward jump
  // function generation, accepts constants only.
  FJFFixture F("proc setv(o) { o = 6; }\n"
               "proc use(x) { print x; }\n"
               "proc main() { var v; call setv(v); call use(v); }");
  ForwardJumpFunctions FJFs =
      F.build(JumpFunctionKind::IntraproceduralConstant);
  // The use(v) site: v's value is the CallOut of setv, whose return jump
  // function is the constant 6.
  const std::vector<CallInst *> &Sites =
      F.CG->callSitesIn(getProc(*F.M, "main"));
  ASSERT_EQ(Sites.size(), 2u);
  const CallSiteJumpFunctions &UseSite = FJFs.at(Sites[1]);
  ASSERT_TRUE(UseSite.Formals[0].isConstant());
  EXPECT_EQ(UseSite.Formals[0].expr()->getConst(), 6);
}

TEST(ForwardJF, NonConstantReturnJumpFunctionIsBottomInForwardPhase) {
  // dbl's return jump function is symbolic (s * 2); at use's site it
  // cannot be evaluated to a constant from intraprocedural information
  // (s was the caller's formal), so it is bottom — the exact limitation
  // stated in Section 3.2.
  FJFFixture F("proc dbl(x, s) { x = s * 2; }\n"
               "proc caller(t) { var v; call dbl(v, t); call use(v); }\n"
               "proc use(x) { print x; }\n"
               "proc main() { call caller(3); }");
  ForwardJumpFunctions FJFs = F.build(JumpFunctionKind::Polynomial);
  const std::vector<CallInst *> &Sites =
      F.CG->callSitesIn(getProc(*F.M, "caller"));
  ASSERT_EQ(Sites.size(), 2u);
  const CallSiteJumpFunctions &UseSite = FJFs.at(Sites[1]);
  EXPECT_TRUE(UseSite.Formals[0].isBottom());
}

TEST(ForwardJF, ConstantArgMakesReturnJumpFunctionEvaluable) {
  FJFFixture F("proc dbl(x, s) { x = s * 2; }\n"
               "proc caller() { var v; call dbl(v, 21); call use(v); }\n"
               "proc use(x) { print x; }\n"
               "proc main() { call caller(); }");
  ForwardJumpFunctions FJFs = F.build(JumpFunctionKind::Polynomial);
  const std::vector<CallInst *> &Sites =
      F.CG->callSitesIn(getProc(*F.M, "caller"));
  const CallSiteJumpFunctions &UseSite = FJFs.at(Sites[1]);
  ASSERT_TRUE(UseSite.Formals[0].isConstant());
  EXPECT_EQ(UseSite.Formals[0].expr()->getConst(), 42);
}

TEST(ForwardJF, WithoutReturnJumpFunctionsCallOutsAreBottom) {
  FJFFixture F("proc setv(o) { o = 6; }\n"
               "proc use(x) { print x; }\n"
               "proc main() { var v; call setv(v); call use(v); }");
  ForwardJumpFunctions FJFs = ForwardJumpFunctions::build(
      *F.CG, *F.MRI, F.SSA, /*RJFs=*/nullptr, F.Ctx,
      JumpFunctionKind::Polynomial);
  const std::vector<CallInst *> &Sites =
      F.CG->callSitesIn(getProc(*F.M, "main"));
  const CallSiteJumpFunctions &UseSite = FJFs.at(Sites[1]);
  EXPECT_TRUE(UseSite.Formals[0].isBottom());
}

TEST(ForwardJF, StatsClassifyFunctions) {
  FJFFixture F(Program);
  ForwardJumpFunctions FJFs = F.build(JumpFunctionKind::Polynomial);
  ForwardJumpFunctions::Stats S = FJFs.stats();
  EXPECT_GE(S.Constant, 2u);
  EXPECT_GE(S.PassThrough, 2u);
  EXPECT_GE(S.Polynomial, 1u);
  EXPECT_GE(S.Bottom, 1u);
  EXPECT_EQ(S.total(),
            S.Bottom + S.Constant + S.PassThrough + S.Polynomial);
}

} // namespace
