//===- tests/GatedSSATests.cpp - gated single-assignment tests ------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Paper Section 4.2: "the results that we obtained in this study with
// complete propagation can be achieved by basing the jump-function
// generator on a gated single-assignment form. An analyzer based on
// gated single-assignment form would never consider the dead assignments
// that we found in the complete propagations. ... Note that information
// from return jump functions is used during the construction of the
// gated single-assignment graph."
//
// These tests verify exactly that: one gated pass equals the iterated
// analyze-substitute-eliminate loop on the programs where dead code
// mattered (ocean, spec77), never finds less anywhere, and stays sound.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Pipeline.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/Programs.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

IPCPOptions gated() {
  IPCPOptions Opts;
  Opts.UseGatedSSA = true;
  return Opts;
}

TEST(GatedSSA, ResolvesConstantGuardedMerge) {
  // x is 1-or-2 to a plain phi, but the guard folds: gated resolution
  // sees through it without any dead code elimination round.
  auto M = lowerOk("proc use(a) { print a; }\n"
                   "proc main() {\n"
                   "  var x, flag;\n"
                   "  flag = 0;\n"
                   "  x = 1;\n"
                   "  if (flag) { x = 2; }\n"
                   "  call use(x);\n"
                   "}");
  IPCPResult Plain = runIPCP(*M);
  IPCPResult Gated = runIPCP(*M, gated());
  const ProcedureResult *PlainUse = Plain.findProc("use");
  const ProcedureResult *GatedUse = Gated.findProc("use");
  EXPECT_TRUE(PlainUse->EntryConstants.empty());
  ASSERT_EQ(GatedUse->EntryConstants.size(), 1u);
  EXPECT_EQ(GatedUse->EntryConstants[0].second, 1);
}

TEST(GatedSSA, SelectsTheElseSide) {
  auto M = lowerOk("proc use(a) { print a; }\n"
                   "proc main() {\n"
                   "  var x, flag;\n"
                   "  flag = 1;\n"
                   "  if (flag == 0) { x = 7; } else { x = 9; }\n"
                   "  call use(x);\n"
                   "}");
  IPCPResult Gated = runIPCP(*M, gated());
  ASSERT_EQ(Gated.findProc("use")->EntryConstants.size(), 1u);
  EXPECT_EQ(Gated.findProc("use")->EntryConstants[0].second, 9);
}

TEST(GatedSSA, NonConstantGuardStaysMerged) {
  auto M = lowerOk("proc use(a) { print a; }\n"
                   "proc main() {\n"
                   "  var x, flag;\n"
                   "  read flag;\n"
                   "  x = 1;\n"
                   "  if (flag) { x = 2; }\n"
                   "  call use(x);\n"
                   "}");
  IPCPResult Gated = runIPCP(*M, gated());
  EXPECT_TRUE(Gated.findProc("use")->EntryConstants.empty())
      << "an unknowable guard must not be gated away";
}

TEST(GatedSSA, LoopPhisAreNeverGated) {
  // The loop back edge is reachable through the merge itself; gating
  // must decline even though the entry guard condition is constant.
  auto M = lowerOk("proc use(a) { print a; }\n"
                   "proc main() {\n"
                   "  var i, x;\n"
                   "  x = 5;\n"
                   "  while (x < 8) { x = x + 1; }\n"
                   "  call use(x);\n"
                   "}");
  IPCPResult Gated = runIPCP(*M, gated());
  EXPECT_TRUE(Gated.findProc("use")->EntryConstants.empty());
  OracleReport Report = checkSoundness(*M, Gated);
  EXPECT_TRUE(Report.Sound) << Report.str();
}

TEST(GatedSSA, GuardConstantThroughReturnJumpFunction) {
  // The paper's footnote: return jump function information feeds the
  // gated construction. The guard's constant arrives via init().
  auto M = lowerOk("global flag, v;\n"
                   "proc init() { flag = 0; v = 10; }\n"
                   "proc clobber() { read v; }\n"
                   "proc use() { print v; }\n"
                   "proc main() {\n"
                   "  call init();\n"
                   "  if (flag != 0) { call clobber(); }\n"
                   "  call use();\n"
                   "}");
  IPCPResult Plain = runIPCP(*M);
  IPCPResult Gated = runIPCP(*M, gated());
  EXPECT_TRUE(Plain.findProc("use")->EntryConstants.empty());
  ASSERT_EQ(Gated.findProc("use")->EntryConstants.size(), 1u);
  EXPECT_EQ(Gated.findProc("use")->EntryConstants[0].first, "v");
  EXPECT_EQ(Gated.findProc("use")->EntryConstants[0].second, 10);
}

TEST(GatedSSA, SinglePassMatchesCompletePropagationOnSuite) {
  // The headline claim of Section 4.2: gated single-pass results equal
  // the iterated complete propagation — including on ocean and spec77,
  // the two programs where complete propagation found more.
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    auto M = loadSuiteModule(Prog);
    unsigned Complete = runCompletePropagation(*M).TotalConstantRefs;
    unsigned GatedRefs = runIPCP(*M, gated()).TotalConstantRefs;
    EXPECT_EQ(GatedRefs, Complete) << Prog.Name;
  }
}

TEST(GatedSSA, NeverFindsLessThanPlain) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    auto M = loadSuiteModule(Prog);
    EXPECT_GE(runIPCP(*M, gated()).TotalConstantRefs,
              runIPCP(*M).TotalConstantRefs)
        << Prog.Name;
  }
}

class GatedSSAProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GatedSSAProperties, SoundOnRandomPrograms) {
  GeneratorConfig Config;
  Config.Seed = GetParam();
  Config.NumProcs = 6;
  Config.AllowRecursion = (GetParam() % 2) == 0;
  auto M = lowerOk(generateProgram(Config));
  ExecutionOptions Exec;
  Exec.MaxSteps = 2'000'000;
  IPCPResult Gated = runIPCP(*M, gated());
  OracleReport Report = checkSoundness(*M, Gated, Exec);
  EXPECT_TRUE(Report.Sound) << "seed " << GetParam() << ": " << Report.str();
}

TEST_P(GatedSSAProperties, MonotoneVersusPlain) {
  GeneratorConfig Config;
  Config.Seed = GetParam();
  Config.NumProcs = 6;
  auto M = lowerOk(generateProgram(Config));
  EXPECT_GE(runIPCP(*M, gated()).TotalConstantRefs,
            runIPCP(*M).TotalConstantRefs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GatedSSAProperties,
                         ::testing::Range<uint64_t>(500, 520));

} // namespace
