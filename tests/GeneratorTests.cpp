//===- tests/GeneratorTests.cpp - random program generator tests ----------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/CallGraph.h"
#include "interp/Interpreter.h"
#include "workload/Generator.h"

#include <gtest/gtest.h>

#include <set>

using namespace ipcp;
using namespace ipcp::test;

namespace {

TEST(Generator, DeterministicPerSeed) {
  GeneratorConfig Config;
  Config.Seed = 42;
  EXPECT_EQ(generateProgram(Config), generateProgram(Config));
  GeneratorConfig Other = Config;
  Other.Seed = 43;
  EXPECT_NE(generateProgram(Config), generateProgram(Other));
}

TEST(Generator, RespectsShapeParameters) {
  GeneratorConfig Config;
  Config.Seed = 7;
  Config.NumProcs = 5;
  Config.NumGlobals = 3;
  std::string Source = generateProgram(Config);
  auto M = lowerOk(Source);
  EXPECT_EQ(M->procedures().size(), 6u) << "main plus NumProcs";
  EXPECT_EQ(M->globals().size(), 4u) << "three scalars plus the array";
}

TEST(Generator, NoGlobalsConfig) {
  GeneratorConfig Config;
  Config.Seed = 3;
  Config.NumGlobals = 0;
  Config.GlobalAssignChance = 0;
  Config.UseArrays = false;
  std::string Source = generateProgram(Config);
  auto M = lowerOk(Source);
  EXPECT_TRUE(M->globals().empty());
}

TEST(Generator, ArraysAndWhileLoopsAppear) {
  bool SawArray = false, SawWhile = false;
  for (uint64_t Seed = 1; Seed <= 12 && !(SawArray && SawWhile); ++Seed) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    std::string Source = generateProgram(Config);
    SawArray |= Source.find("ga[") != std::string::npos ||
                Source.find("la[") != std::string::npos;
    SawWhile |= Source.find("while (") != std::string::npos;
  }
  EXPECT_TRUE(SawArray);
  EXPECT_TRUE(SawWhile);
}

TEST(Generator, AcyclicByDefault) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    auto M = lowerOk(generateProgram(Config));
    CallGraph CG(*M);
    for (Procedure *P : CG.procedures())
      EXPECT_FALSE(CG.isRecursive(P)) << "seed " << Seed;
  }
}

TEST(Generator, RecursionWhenRequested) {
  bool SawRecursion = false;
  for (uint64_t Seed = 1; Seed <= 10 && !SawRecursion; ++Seed) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.AllowRecursion = true;
    auto M = lowerOk(generateProgram(Config));
    CallGraph CG(*M);
    for (Procedure *P : CG.procedures())
      SawRecursion |= CG.isRecursive(P);
  }
  EXPECT_TRUE(SawRecursion);
}

TEST(Generator, NeverPassesGlobalsByReference) {
  // The Fortran no-alias discipline (DESIGN.md): generated variable
  // actuals are locals and formals only, and are distinct within a call.
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    auto M = lowerOk(generateProgram(Config));
    for (const std::unique_ptr<Procedure> &P : M->procedures())
      for (CallInst *Call : P->callSites()) {
        std::set<Variable *> Seen;
        for (unsigned I = 0; I != Call->getNumActuals(); ++I) {
          Variable *Loc = Call->getActual(I).ByRefLoc;
          if (!Loc)
            continue;
          EXPECT_FALSE(Loc->isGlobal()) << "seed " << Seed;
          EXPECT_TRUE(Seen.insert(Loc).second)
              << "duplicate by-ref actual, seed " << Seed;
        }
      }
  }
}

class GeneratedProgramsAreValid : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedProgramsAreValid, CompilesVerifiesAndTerminates) {
  GeneratorConfig Config;
  Config.Seed = GetParam();
  Config.NumProcs = 6;
  std::string Source = generateProgram(Config);
  auto M = lowerOk(Source);

  ExecutionOptions Opts;
  Opts.MaxSteps = 2'000'000;
  ExecutionResult R = interpret(*M, Opts);
  // Generated programs avoid division, so the only legal stops are
  // normal completion, an (unlikely) multiplication overflow, or fuel:
  // loops are bounded and the call graph acyclic, so termination is
  // structural, but sequential call fan-out is exponential in the
  // layer depth and can legitimately outrun any fixed step budget.
  if (R.TheStatus == ExecutionResult::Status::Trap) {
    EXPECT_NE(R.TrapMessage.find("arithmetic fault"), std::string::npos)
        << R.TrapMessage;
  } else if (R.TheStatus == ExecutionResult::Status::OutOfFuel) {
    EXPECT_GE(R.Steps, Opts.MaxSteps)
        << "fuel stop must be the step budget, not the depth guard";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedProgramsAreValid,
                         ::testing::Range<uint64_t>(1, 26));

} // namespace
