//===- tests/IRTests.cpp - IR data structure tests ------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/DeadCode.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

#include <set>

using namespace ipcp;
using namespace ipcp::test;

namespace {

TEST(IRModule, ConstantsAreUniqued) {
  Module M;
  EXPECT_EQ(M.getConstant(42), M.getConstant(42));
  EXPECT_NE(M.getConstant(42), M.getConstant(43));
  EXPECT_EQ(M.getConstant(-1)->getValue(), -1);
}

TEST(IRModule, InstructionIdsAreUnique) {
  auto M = lowerOk("proc main() { var x; x = 1 + 2; print x; }");
  std::set<uint64_t> Ids;
  for (const std::unique_ptr<Procedure> &P : M->procedures())
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
      for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
        EXPECT_TRUE(Ids.insert(Inst->getId()).second)
            << "duplicate id " << Inst->getId();
}

TEST(IRModule, CloneIsStructurallyIdentical) {
  auto M = lowerOk("global g;\n"
                   "proc f(a, b) { a = b + g; call f(a, 1); }\n"
                   "proc main() { var x, m[4]; m[0] = x; call f(x, m[1]); "
                   "read x; print x; }");
  auto Clone = M->clone();
  EXPECT_EQ(printModule(*M), printModule(*Clone));
  expectVerifies(*Clone, VerifyMode::PreSSA);
}

TEST(IRModule, ClonePreservesIds) {
  auto M = lowerOk("proc main() { var x; x = 2 * 3; print x; }");
  auto Clone = M->clone();
  auto Collect = [](Module &Mod) {
    std::vector<uint64_t> Ids;
    for (const std::unique_ptr<Procedure> &P : Mod.procedures())
      for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
        for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
          Ids.push_back(Inst->getId());
    return Ids;
  };
  EXPECT_EQ(Collect(*M), Collect(*Clone));
}

TEST(IRModule, CloneIsIndependent) {
  auto M = lowerOk("proc main() { var x; x = 1; }");
  auto Clone = M->clone();
  // Mutating the clone must not affect the original.
  Procedure *CloneMain = Clone->findProcedure("main");
  BasicBlock *Entry = CloneMain->getEntryBlock();
  Instruction *First = Entry->instructions().front().get();
  Entry->erase(First);
  EXPECT_NE(printModule(*M), printModule(*Clone));
}

TEST(IRModule, CloneVariableIdentityMapsByIdAndName) {
  auto M = lowerOk("global g;\nproc main() { var x; x = g; }");
  auto Clone = M->clone();
  EXPECT_EQ(M->globals()[0]->getId(), Clone->globals()[0]->getId());
  Procedure *Main = getProc(*M, "main");
  Procedure *CloneMain = getProc(*Clone, "main");
  ASSERT_EQ(Main->locals().size(), CloneMain->locals().size());
  EXPECT_EQ(Main->locals()[0]->getId(), CloneMain->locals()[0]->getId());
  EXPECT_NE(Main->locals()[0], CloneMain->locals()[0]);
}

TEST(IRBasicBlock, SuccessorsFromTerminator) {
  auto M = lowerOk("proc main() { var x; if (x) { x = 1; } }");
  Procedure *Main = getProc(*M, "main");
  BasicBlock *Entry = Main->getEntryBlock();
  EXPECT_EQ(Entry->successors().size(), 2u);
  EXPECT_EQ(Main->getExitBlock()->successors().size(), 0u);
}

TEST(IRBasicBlock, PredecessorListsMatchEdges) {
  auto M =
      lowerOk("proc main() { var x; while (x < 2) { x = x + 1; } print x; }");
  expectVerifies(*M, VerifyMode::PreSSA); // includes the edge consistency check
}

TEST(IRProcedure, RemoveUnreachableBlocks) {
  auto M = lowerOk("proc main() { var x; x = 1; }");
  Procedure *Main = getProc(*M, "main");
  // Manufacture an unreachable block.
  BasicBlock *Dead = Main->createBlock("dead");
  Dead->append(std::make_unique<BranchInst>(M->nextInstId(), SourceLoc(),
                                            Main->getExitBlock()));
  Main->getExitBlock()->addPredecessor(Dead);
  EXPECT_EQ(Main->removeUnreachableBlocks(), 1u);
  expectVerifies(*M, VerifyMode::PreSSA);
}

TEST(IRInstruction, ReplaceUsesOfWith) {
  Module M;
  Procedure *P = M.createProcedure("p");
  BasicBlock *BB = P->createBlock("entry");
  Value *C1 = M.getConstant(1);
  Value *C2 = M.getConstant(2);
  auto *Add = cast<BinaryInst>(BB->append(std::make_unique<BinaryInst>(
      M.nextInstId(), SourceLoc(), BinaryOp::Add, C1, C1)));
  Add->replaceUsesOfWith(C1, C2);
  EXPECT_EQ(Add->getLHS(), C2);
  EXPECT_EQ(Add->getRHS(), C2);
}

TEST(IRInstruction, TerminatorPredicate) {
  Module M;
  Procedure *P = M.createProcedure("p");
  BasicBlock *A = P->createBlock("a");
  auto Br = std::make_unique<BranchInst>(M.nextInstId(), SourceLoc(), A);
  EXPECT_TRUE(Br->isTerminator());
  auto Read = std::make_unique<ReadInst>(M.nextInstId(), SourceLoc());
  EXPECT_FALSE(Read->isTerminator());
}

TEST(IRValue, KindPredicates) {
  Module M;
  EXPECT_TRUE(M.getConstant(5)->producesValue());
  EXPECT_FALSE(M.getConstant(5)->isInstruction());
  EXPECT_TRUE(M.getUndef()->producesValue());
  auto Print = std::make_unique<PrintInst>(M.nextInstId(), SourceLoc(),
                                           M.getConstant(1));
  EXPECT_TRUE(Print->isInstruction());
  EXPECT_FALSE(Print->producesValue());
}

//===----------------------------------------------------------------------===//
// Verifier negative tests: each broken invariant is reported.
//===----------------------------------------------------------------------===//

TEST(Verifier, ReportsMissingTerminator) {
  Module M;
  Procedure *P = M.createProcedure("p");
  BasicBlock *BB = P->createBlock("entry");
  BB->append(std::make_unique<ReadInst>(M.nextInstId(), SourceLoc()));
  std::vector<std::string> Errors;
  verifyProcedure(*P, VerifyMode::PreSSA, Errors);
  ASSERT_FALSE(Errors.empty());
  bool Found = false;
  for (const std::string &E : Errors)
    if (E.find("terminators") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Verifier, ReportsInconsistentPredecessors) {
  Module M;
  Procedure *P = M.createProcedure("p");
  BasicBlock *A = P->createBlock("a");
  BasicBlock *B = P->createBlock("b");
  P->setExitBlock(B);
  A->append(std::make_unique<BranchInst>(M.nextInstId(), SourceLoc(), B));
  B->append(std::make_unique<RetInst>(M.nextInstId(), SourceLoc()));
  // Deliberately forget B->addPredecessor(A).
  std::vector<std::string> Errors;
  verifyProcedure(*P, VerifyMode::PreSSA, Errors);
  bool Found = false;
  for (const std::string &E : Errors)
    if (E.find("inconsistent pred/succ") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Verifier, ReportsPhiInPreSSA) {
  auto M = lowerOk("proc main() { var x; x = 1; }");
  Procedure *Main = getProc(*M, "main");
  Main->getEntryBlock()->insertAtTop(
      std::make_unique<PhiInst>(M->nextInstId(), SourceLoc(),
                                Main->locals()[0]),
      /*AfterPhis=*/false);
  std::vector<std::string> Errors;
  verifyProcedure(*Main, VerifyMode::PreSSA, Errors);
  bool Found = false;
  for (const std::string &E : Errors)
    if (E.find("phi/callout") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Verifier, ReportsCallArityMismatch) {
  Module M;
  Procedure *Callee = M.createProcedure("callee");
  Callee->addFormal("a");
  BasicBlock *CB = Callee->createBlock("entry");
  Callee->setExitBlock(CB);
  CB->append(std::make_unique<RetInst>(M.nextInstId(), SourceLoc()));

  Procedure *P = M.createProcedure("p");
  BasicBlock *BB = P->createBlock("entry");
  P->setExitBlock(BB);
  BB->append(std::make_unique<CallInst>(M.nextInstId(), SourceLoc(), Callee,
                                        std::vector<CallActual>{}));
  BB->append(std::make_unique<RetInst>(M.nextInstId(), SourceLoc()));
  std::vector<std::string> Errors;
  verifyProcedure(*P, VerifyMode::PreSSA, Errors);
  bool Found = false;
  for (const std::string &E : Errors)
    if (E.find("passes 0 actuals") != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Fact application (applyFacts) on pre-SSA modules.
//===----------------------------------------------------------------------===//

TEST(ApplyFacts, SubstitutesConstantLoads) {
  auto M = lowerOk("global g;\nproc main() { g = 4; print g + 1; }");
  Procedure *Main = getProc(*M, "main");
  auto *Load = firstInst<LoadInst>(*Main);
  ASSERT_NE(Load, nullptr);
  TransformFacts Facts;
  Facts.ConstantLoads[Load->getId()] = 4;
  TransformStats Stats = applyFacts(*M, Facts);
  EXPECT_EQ(Stats.LoadsReplaced, 1u);
  EXPECT_EQ(countInsts<LoadInst>(*Main), 0u);
  expectVerifies(*M, VerifyMode::PreSSA);
}

TEST(ApplyFacts, FoldsBranchesAndRemovesDeadBlocks) {
  auto M = lowerOk(
      "proc main() { var x; if (x == 0) { print 1; } else { print 2; } }");
  Procedure *Main = getProc(*M, "main");
  auto *CBr = firstInst<CondBranchInst>(*Main);
  ASSERT_NE(CBr, nullptr);
  TransformFacts Facts;
  Facts.FoldedBranches[CBr->getId()] = true; // always take the then-branch
  TransformStats Stats = applyFacts(*M, Facts);
  EXPECT_EQ(Stats.BranchesFolded, 1u);
  EXPECT_EQ(Stats.BlocksRemoved, 1u);
  EXPECT_TRUE(Stats.foundDeadCode());
  EXPECT_EQ(countInsts<PrintInst>(*Main), 1u);
  expectVerifies(*M, VerifyMode::PreSSA);
}

TEST(ApplyFacts, RemovesTriviallyDeadChains) {
  auto M = lowerOk("proc main() { var x, y; y = (x + 1) * (x - 2); }");
  Procedure *Main = getProc(*M, "main");
  // Deleting the final store manually leaves the whole expression dead.
  StoreInst *TheStore = nullptr;
  for (const std::unique_ptr<BasicBlock> &BB : Main->blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (auto *Store = dyn_cast<StoreInst>(Inst.get()))
        if (Store->getVariable()->getName() == "y")
          TheStore = Store;
  ASSERT_NE(TheStore, nullptr);
  TheStore->getParent()->erase(TheStore);
  unsigned Removed = removeTriviallyDeadInstructions(*Main);
  EXPECT_GE(Removed, 3u) << "the add, sub, mul and loads are dead";
  EXPECT_EQ(countInsts<BinaryInst>(*Main), 0u);
}

TEST(ApplyFacts, ReadsAreNeverDeleted) {
  auto M = lowerOk("proc main() { var x; read x; }");
  Procedure *Main = getProc(*M, "main");
  // The read's value is stored; delete the store so the read is unused.
  auto *Store = firstInst<StoreInst>(*Main);
  // Find the store fed by the read specifically.
  for (const std::unique_ptr<BasicBlock> &BB : Main->blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (auto *S = dyn_cast<StoreInst>(Inst.get()))
        if (isa<ReadInst>(S->getValueOperand()))
          Store = S;
  Store->getParent()->erase(Store);
  removeTriviallyDeadInstructions(*Main);
  EXPECT_EQ(countInsts<ReadInst>(*Main), 1u)
      << "reads consume external input and must survive DCE";
}

} // namespace
