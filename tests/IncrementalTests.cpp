//===- tests/IncrementalTests.cpp - Warm-vs-cold differential layer -------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The soundness argument for the incremental summary cache
// (docs/INCREMENTAL.md) is differential: a warm run — whatever mix of
// adopted summaries, cached VAL sets, and replayed record stages it
// lands on — must produce a normalized "ipcp-report-v1" document that is
// byte-identical to a cold run of the same module. This file drives that
// comparison over:
//
//  - every program in examples/programs/,
//  - the twelve-program benchmark suite,
//  - a seeded generator corpus, and
//  - single-procedure mutants analyzed against the *stale* cache of
//    their original (the invalidation paths, including MOD changes that
//    must propagate to callers),
//
// for well over 200 distinct programs per run, plus the corruption and
// lifecycle properties: truncated / version-mismatched / bit-flipped
// cache files degrade to a cold run (never crash, never alter results),
// mismatched options miss the cache entirely, and a degraded run can
// never poison the store.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/CallGraph.h"
#include "core/Pipeline.h"
#include "core/Report.h"
#include "core/SummaryCache.h"
#include "ir/Instructions.h"
#include "support/FileIO.h"
#include "support/Json.h"
#include "workload/Generator.h"
#include "workload/Study.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// A result's report with everything a warm run may legitimately change
/// (timings, cache block, volatile work counters) stripped.
std::string normalized(const IPCPResult &Res) {
  JsonValue Doc = resultToJson(Res);
  normalizeReportForDiff(Doc);
  return Doc.dump(2);
}

/// The core differential check on one module: a cache-populating cold
/// run, the warm rerun behind it, and a cache-less reference must agree
/// on the normalized report — and the warm run must actually have been
/// warm (every procedure a hit, at least one VAL set adopted).
void expectWarmEqualsCold(Module &M, const std::string &Label) {
  IPCPResult Plain = runIPCP(M);

  SummaryCache Cache;
  IPCPOptions WithCache;
  WithCache.Cache = &Cache;
  IPCPResult Cold = runIPCP(M, WithCache);
  IPCPResult Warm = runIPCP(M, WithCache);

  std::string Reference = normalized(Plain);
  EXPECT_EQ(Reference, normalized(Cold)) << Label << ": populating run";
  EXPECT_EQ(Reference, normalized(Warm)) << Label << ": warm run";

  EXPECT_EQ(Cold.Stats.get("cache_hits"), 0u) << Label;
  EXPECT_GT(Cold.Stats.get("cache_misses"), 0u) << Label;
  EXPECT_EQ(Warm.Stats.get("cache_misses"), 0u) << Label;
  EXPECT_GT(Warm.Stats.get("cache_hits"), 0u) << Label;
  EXPECT_GT(Warm.Stats.get("cache_val_adopted"), 0u) << Label;
}

/// The stale-cache differential check: analyze \p Mutant against the
/// cache populated from \p Original. Whatever the invalidation logic
/// decides to keep or rebuild, the normalized report must match a cold
/// run of the mutant.
void expectStaleWarmEqualsCold(Module &Original, Module &Mutant,
                               const std::string &Label) {
  SummaryCache Cache;
  IPCPOptions WithCache;
  WithCache.Cache = &Cache;
  runIPCP(Original, WithCache);

  IPCPResult Warm = runIPCP(Mutant, WithCache);
  IPCPResult Cold = runIPCP(Mutant);
  EXPECT_EQ(normalized(Cold), normalized(Warm)) << Label;
}

/// Prepends `print 9;` to procedure index \p Victim of a clone of \p M:
/// a body change whose summary content is unchanged (the early-cutoff
/// case).
std::unique_ptr<Module> withPrintPrepended(const Module &M, size_t Victim) {
  std::unique_ptr<Module> Mut = M.clone();
  Procedure *P = Mut->procedures()[Victim % Mut->procedures().size()].get();
  P->getEntryBlock()->insertAtTop(std::make_unique<PrintInst>(
      Mut->nextInstId(), SourceLoc(), Mut->getConstant(9)));
  return Mut;
}

/// Prepends `g = 7;` (first scalar global) to procedure index \p Victim
/// of a clone of \p M: grows MOD(p), so the summary *content* changes
/// and the invalidation must reach every caller. Returns null when the
/// module has no scalar global.
std::unique_ptr<Module> withGlobalStorePrepended(const Module &M,
                                                 size_t Victim) {
  std::unique_ptr<Module> Mut = M.clone();
  Variable *Global = nullptr;
  for (Variable *G : Mut->globals())
    if (G->isScalar()) {
      Global = G;
      break;
    }
  if (!Global)
    return nullptr;
  Procedure *P = Mut->procedures()[Victim % Mut->procedures().size()].get();
  P->getEntryBlock()->insertAtTop(std::make_unique<StoreInst>(
      Mut->nextInstId(), SourceLoc(), Global, Mut->getConstant(7)));
  return Mut;
}

//===----------------------------------------------------------------------===//
// Differential equivalence: examples, suite, generated corpus, mutants
//===----------------------------------------------------------------------===//

TEST(Incremental, ExamplePrograms) {
  unsigned Analyzed = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(IPCP_EXAMPLES_DIR)) {
    if (Entry.path().extension() != ".mf")
      continue;
    std::string Source, Error;
    ASSERT_TRUE(readFileToString(Entry.path().string(), Source, &Error))
        << Error;
    DiagnosticsEngine Diags;
    std::optional<Program> Prog = parseAndCheck(Source, Diags);
    if (!Prog)
      continue; // e.g. bad_syntax.mf — frontend rejection is its own test
    std::unique_ptr<Module> M = lowerProgram(*Prog);
    expectWarmEqualsCold(*M, Entry.path().filename().string());
    ++Analyzed;
  }
  EXPECT_GE(Analyzed, 3u) << "examples/programs/ lost its corpus";
}

TEST(Incremental, SuitePrograms) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    std::unique_ptr<Module> M = loadSuiteModule(Prog);
    expectWarmEqualsCold(*M, Prog.Name);
  }
}

// ~100 generated programs across the generator's shape axes.
TEST(Incremental, GeneratedPrograms) {
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumProcs = 3 + unsigned(Seed % 5);
    Config.StmtsPerProc = 6;
    Config.AllowRecursion = Seed % 4 == 0;
    Config.UseArrays = Seed % 3 != 0;
    Config.UseWhileLoops = Seed % 2 == 0;
    std::unique_ptr<Module> M = lowerOk(generateProgram(Config));
    expectWarmEqualsCold(*M, "seed " + std::to_string(Seed));
  }
}

// ~120 single-procedure mutants, each analyzed against the stale cache
// of its original: 60 body-only edits (early cutoff) and 60 MOD-growing
// edits (content change, caller invalidation).
TEST(Incremental, MutatedPrograms) {
  for (uint64_t Seed = 1; Seed <= 60; ++Seed) {
    GeneratorConfig Config;
    Config.Seed = 1000 + Seed;
    Config.NumProcs = 3 + unsigned(Seed % 4);
    Config.StmtsPerProc = 6;
    Config.AllowRecursion = Seed % 5 == 0;
    std::unique_ptr<Module> M = lowerOk(generateProgram(Config));
    std::string Label = "mutant seed " + std::to_string(Seed);

    std::unique_ptr<Module> PrintMut = withPrintPrepended(*M, size_t(Seed));
    expectStaleWarmEqualsCold(*M, *PrintMut, Label + " (print)");

    std::unique_ptr<Module> StoreMut =
        withGlobalStorePrepended(*M, size_t(Seed) + 1);
    ASSERT_NE(StoreMut, nullptr) << Label;
    expectStaleWarmEqualsCold(*M, *StoreMut, Label + " (global store)");
  }
}

//===----------------------------------------------------------------------===//
// Incrementality: a warm rerun does strictly less propagation work
//===----------------------------------------------------------------------===//

const char *const Chain = R"(
global scale;

proc leaf(a) {
  a = a * 2;
}

proc mid(b) {
  call leaf(b);
  b = b + scale;
}

proc main() {
  var x;
  scale = 10;
  x = 3;
  call mid(x);
  print x;
}
)";

TEST(Incremental, LeafEditDoesStrictlyLessWork) {
  std::unique_ptr<Module> M = lowerOk(Chain);
  SummaryCache Cache;
  IPCPOptions WithCache;
  WithCache.Cache = &Cache;
  runIPCP(*M, WithCache);

  // A fully warm rerun evaluates no jump functions at all.
  IPCPResult Rerun = runIPCP(*M, WithCache);
  EXPECT_EQ(Rerun.Stats.get("prop_evaluations"), 0u);
  EXPECT_EQ(Rerun.Stats.get("cache_misses"), 0u);

  // After editing only `leaf`, the warm run re-analyzes the leaf's SCC
  // but adopts `mid` and `main` (the body edit left the leaf's summary
  // content unchanged, so the callers' keys still validate) — strictly
  // fewer evaluations than the identical cold run.
  std::unique_ptr<Module> Edited = M->clone();
  getProc(*Edited, "leaf")
      ->getEntryBlock()
      ->insertAtTop(std::make_unique<PrintInst>(
          Edited->nextInstId(), SourceLoc(), Edited->getConstant(1)));
  IPCPResult Warm = runIPCP(*Edited, WithCache);
  IPCPResult Cold = runIPCP(*Edited);
  EXPECT_EQ(normalized(Cold), normalized(Warm));
  EXPECT_LT(Warm.Stats.get("prop_evaluations"),
            Cold.Stats.get("prop_evaluations"));
  EXPECT_GT(Warm.Stats.get("cache_hits"), 0u);
  EXPECT_GT(Warm.Stats.get("cache_invalidations") +
                Warm.Stats.get("cache_misses"),
            0u);
}

//===----------------------------------------------------------------------===//
// Corruption: every broken cache degrades to a cold run
//===----------------------------------------------------------------------===//

/// Populates an in-memory cache from the chain program and returns its
/// serialized form along with the module.
std::string populatedCacheText(std::unique_ptr<Module> &M,
                               const IPCPOptions &Opts) {
  M = lowerOk(Chain);
  SummaryCache Cache;
  IPCPOptions WithCache = Opts;
  WithCache.Cache = &Cache;
  runIPCP(*M, WithCache);
  EXPECT_TRUE(Cache.committed());
  return Cache.serialize(Opts);
}

/// Expects \p Text to be rejected by loadFromString and the subsequent
/// run to be a plain cold run with unchanged results.
void expectDegradesToCold(const std::string &Text, const std::string &Label) {
  std::unique_ptr<Module> M = lowerOk(Chain);
  IPCPResult Reference = runIPCP(*M);

  SummaryCache Cache;
  IPCPOptions WithCache;
  WithCache.Cache = &Cache;
  EXPECT_FALSE(Cache.loadFromString(Text, WithCache)) << Label;
  EXPECT_EQ(Cache.size(), 0u) << Label;

  IPCPResult Run = runIPCP(*M, WithCache);
  EXPECT_EQ(normalized(Reference), normalized(Run)) << Label;
  EXPECT_EQ(Run.Stats.get("cache_hits"), 0u) << Label;
  EXPECT_GT(Run.Stats.get("cache_misses"), 0u) << Label;
}

TEST(IncrementalCache, SerializedRoundTrip) {
  std::unique_ptr<Module> M;
  IPCPOptions Opts;
  std::string Text = populatedCacheText(M, Opts);
  EXPECT_NE(Text.find("ipcp-cache-v1"), std::string::npos);

  SummaryCache Cache;
  ASSERT_TRUE(Cache.loadFromString(Text, Opts));
  EXPECT_EQ(Cache.size(), 3u); // leaf, mid, main

  IPCPOptions WithCache = Opts;
  WithCache.Cache = &Cache;
  IPCPResult Warm = runIPCP(*M, WithCache);
  EXPECT_EQ(Warm.Stats.get("cache_misses"), 0u);
  EXPECT_EQ(normalized(runIPCP(*M)), normalized(Warm));
}

TEST(IncrementalCache, TruncationDegradesToCold) {
  std::unique_ptr<Module> M;
  IPCPOptions Opts;
  std::string Text = populatedCacheText(M, Opts);
  expectDegradesToCold(Text.substr(0, Text.size() / 2), "half");
  expectDegradesToCold(Text.substr(0, 1), "one byte");
  expectDegradesToCold("", "empty");
}

TEST(IncrementalCache, VersionMismatchDegradesToCold) {
  std::unique_ptr<Module> M;
  IPCPOptions Opts;
  std::string Text = populatedCacheText(M, Opts);
  size_t At = Text.find("ipcp-cache-v1");
  ASSERT_NE(At, std::string::npos);
  Text.replace(At, 13, "ipcp-cache-v9");
  expectDegradesToCold(Text, "version");
}

TEST(IncrementalCache, BitFlipsDegradeToCold) {
  std::unique_ptr<Module> M;
  IPCPOptions Opts;
  std::string Text = populatedCacheText(M, Opts);
  // Flip a spread of payload bytes; the checksum (or the JSON parser)
  // must reject every one of them without crashing.
  for (size_t Frac = 1; Frac <= 4; ++Frac) {
    std::string Bad = Text;
    Bad[Bad.size() * Frac / 5] ^= 0x11;
    SummaryCache Probe;
    IPCPOptions ProbeOpts;
    if (Probe.loadFromString(Bad, ProbeOpts) && Probe.size() > 0)
      continue; // the flip landed on a byte the checksum ignores (none do)
    expectDegradesToCold(Bad, "flip at " + std::to_string(Frac) + "/5");
  }
}

TEST(IncrementalCache, OptionsMismatchMissesTheCache) {
  IPCPOptions A;
  IPCPOptions B;
  B.ForwardKind = JumpFunctionKind::Literal;
  SummaryCache Probe("/tmp/unused-cache-dir");
  EXPECT_NE(Probe.filePathFor("prog.mf", A), Probe.filePathFor("prog.mf", B));

  // A payload saved under A does not validate under B even when handed
  // over file-path resolution's head: the fingerprint is in the payload.
  std::unique_ptr<Module> M;
  std::string Text = populatedCacheText(M, A);
  SummaryCache Cache;
  EXPECT_FALSE(Cache.loadFromString(Text, B));
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(IncrementalCache, DiskRoundTripAndTruncation) {
  std::string Dir = ::testing::TempDir() + "ipcp-cache-test";
  std::filesystem::remove_all(Dir);
  std::unique_ptr<Module> M = lowerOk(Chain);
  IPCPOptions Opts;

  // Cold start on a missing directory: not a failure, just cold.
  SummaryCache Writer(Dir);
  EXPECT_FALSE(Writer.load("chain.mf", Opts));
  EXPECT_FALSE(Writer.loadFailed());
  IPCPOptions WriterOpts = Opts;
  WriterOpts.Cache = &Writer;
  runIPCP(*M, WriterOpts);
  std::string Error;
  ASSERT_TRUE(Writer.save("chain.mf", Opts, &Error)) << Error;

  // A fresh object warms up from the file.
  SummaryCache Reader(Dir);
  EXPECT_TRUE(Reader.load("chain.mf", Opts));
  EXPECT_EQ(Reader.size(), 3u);
  IPCPOptions ReaderOpts = Opts;
  ReaderOpts.Cache = &Reader;
  IPCPResult Warm = runIPCP(*M, ReaderOpts);
  EXPECT_EQ(Warm.Stats.get("cache_misses"), 0u);

  // Truncate the file on disk: load fails, loadFailed() reports it, and
  // the run both proceeds cold and surfaces cache_load_failures.
  std::string Path = Reader.filePathFor("chain.mf", Opts);
  std::string Text;
  ASSERT_TRUE(readFileToString(Path, Text, &Error)) << Error;
  {
    std::ofstream Out(Path, std::ios::trunc | std::ios::binary);
    Out << Text.substr(0, Text.size() / 3);
  }
  SummaryCache Corrupt(Dir);
  EXPECT_FALSE(Corrupt.load("chain.mf", Opts));
  EXPECT_TRUE(Corrupt.loadFailed());
  IPCPOptions CorruptOpts = Opts;
  CorruptOpts.Cache = &Corrupt;
  IPCPResult Run = runIPCP(*M, CorruptOpts);
  EXPECT_GT(Run.Stats.get("cache_load_failures"), 0u);
  EXPECT_GT(Run.Stats.get("cache_misses"), 0u);
  EXPECT_EQ(normalized(runIPCP(*M)), normalized(Run));
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Lifecycle: degraded runs never poison the store
//===----------------------------------------------------------------------===//

TEST(IncrementalCache, DegradedRunDoesNotPoisonTheStore) {
  std::unique_ptr<Module> M = lowerOk(Chain);
  SummaryCache Cache;
  IPCPOptions WithCache;
  WithCache.Cache = &Cache;
  runIPCP(*M, WithCache);
  EXPECT_TRUE(Cache.committed());

  // Edit the *root* procedure and rerun with a budget that trips
  // mid-propagation (the root edit invalidates every cached VAL set, so
  // propagation must do real work): the degraded run must not commit
  // its partial summaries.
  std::unique_ptr<Module> Edited = M->clone();
  getProc(*Edited, "main")
      ->getEntryBlock()
      ->insertAtTop(std::make_unique<PrintInst>(
          Edited->nextInstId(), SourceLoc(), Edited->getConstant(2)));
  IPCPOptions Tripping = WithCache;
  Tripping.Limits.MaxPropagationEvals = 1;
  IPCPResult Degraded = runIPCP(*Edited, Tripping);
  EXPECT_TRUE(Degraded.Status.Degraded);

  // The store still serves the *original* module perfectly warm.
  IPCPResult Warm = runIPCP(*M, WithCache);
  EXPECT_EQ(Warm.Stats.get("cache_misses"), 0u);
  EXPECT_EQ(normalized(runIPCP(*M)), normalized(Warm));
}

// The reporting surface: a cached run exposes the "cache" block, and
// normalizeReportForDiff removes exactly the volatile parts.
TEST(IncrementalCache, ReportSurface) {
  std::unique_ptr<Module> M = lowerOk(Chain);
  SummaryCache Cache;
  IPCPOptions WithCache;
  WithCache.Cache = &Cache;
  IPCPResult Res = runIPCP(*M, WithCache);
  EXPECT_TRUE(Res.UsedCache);

  JsonValue Doc = resultToJson(Res);
  ASSERT_NE(Doc.find("cache"), nullptr);
  EXPECT_NE(Doc.find("timings_us"), nullptr);
  normalizeReportForDiff(Doc);
  EXPECT_EQ(Doc.find("cache"), nullptr);
  EXPECT_EQ(Doc.find("timings_us"), nullptr);

  IPCPResult Plain = runIPCP(*M);
  EXPECT_FALSE(Plain.UsedCache);
  JsonValue PlainDoc = resultToJson(Plain);
  EXPECT_EQ(PlainDoc.find("cache"), nullptr);
}

} // namespace
