//===- tests/InliningTests.cpp - procedure integration tests --------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Inlining.h"
#include "interp/Interpreter.h"
#include "workload/Generator.h"
#include "workload/Programs.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

TEST(Inlining, SingleSiteBasics) {
  auto M = lowerOk("proc inc(x) { x = x + 1; }\n"
                   "proc main() { var v; v = 4; call inc(v); print v; }");
  Procedure *Main = getProc(*M, "main");
  CallInst *Call = firstInst<CallInst>(*Main);
  ASSERT_NE(Call, nullptr);
  inlineCallSite(*M, *Main, Call);
  expectVerifies(*M, VerifyMode::PreSSA);
  EXPECT_EQ(countInsts<CallInst>(*Main), 0u);
  ExecutionResult R = interpret(*M);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{5}))
      << "by-reference binding must update the caller's variable";
}

TEST(Inlining, ExpressionActualStaysIsolated) {
  auto M = lowerOk("proc clobber(x) { x = 99; }\n"
                   "proc main() { var v; v = 4; call clobber(v + 0); "
                   "print v; }");
  Procedure *Main = getProc(*M, "main");
  inlineCallSite(*M, *Main, firstInst<CallInst>(*Main));
  expectVerifies(*M, VerifyMode::PreSSA);
  ExecutionResult R = interpret(*M);
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{4}))
      << "the hidden temporary absorbs the write";
}

TEST(Inlining, CalleeLocalsAreFreshPerIntegration) {
  auto M = lowerOk("proc acc(x) { var t; t = t + x; x = t; }\n"
                   "proc main() { var a, b; a = 3; b = 8; call acc(a); "
                   "call acc(b); print a; print b; }");
  Procedure *Main = getProc(*M, "main");
  // Inline both sites.
  std::vector<CallInst *> Sites = Main->callSites();
  for (CallInst *Site : Sites)
    inlineCallSite(*M, *Main, Site);
  expectVerifies(*M, VerifyMode::PreSSA);
  ExecutionResult R = interpret(*M);
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{3, 8}))
      << "each integration zero-initializes its own copy of t";
}

TEST(Inlining, ControlFlowInsideCalleeSurvives) {
  auto M = lowerOk(
      "proc clampit(v, hi) { if (v > hi) { v = hi; } }\n"
      "proc main() { var a, b; a = 10; b = 3; call clampit(a, 7); "
      "call clampit(b, 7); print a; print b; }");
  Procedure *Main = getProc(*M, "main");
  for (CallInst *Site : Main->callSites())
    inlineCallSite(*M, *Main, Site);
  expectVerifies(*M, VerifyMode::PreSSA);
  ExecutionResult R = interpret(*M);
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{7, 3}));
}

TEST(Inlining, CallInsideLoopReexecutes) {
  auto M = lowerOk("global total;\n"
                   "proc add(k) { total = total + k; }\n"
                   "proc main() { var i; do i = 1, 4 { call add(i); } "
                   "print total; }");
  Procedure *Main = getProc(*M, "main");
  inlineCallSite(*M, *Main, firstInst<CallInst>(*Main));
  expectVerifies(*M, VerifyMode::PreSSA);
  ExecutionResult R = interpret(*M);
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{10}));
}

TEST(Inlining, NestedCallsNeedRounds) {
  auto M = lowerOk("proc c(z) { z = z * 2; }\n"
                   "proc b(y) { call c(y); y = y + 1; }\n"
                   "proc a(x) { call b(x); }\n"
                   "proc main() { var v; v = 5; call a(v); print v; }");
  InlineOptions Opts;
  InlineResult R = inlineCalls(*M, Opts);
  expectVerifies(*M, VerifyMode::PreSSA);
  EXPECT_GE(R.CallsInlined, 3u);
  EXPECT_GE(R.RoundsRun, 1u);
  EXPECT_EQ(countInsts<CallInst>(*getProc(*M, "main")), 0u);
  EXPECT_EQ(R.ProceduresRemoved, 3u) << "a, b, c are all dead afterwards";
  ExecutionResult Exec = interpret(*M);
  EXPECT_EQ(Exec.Output, (std::vector<ConstantValue>{11}));
}

TEST(Inlining, RecursiveCalleesAreSkipped) {
  auto M = lowerOk("proc f(n) { if (n > 0) { call f(n - 1); } }\n"
                   "proc main() { call f(3); }");
  InlineResult R = inlineCalls(*M);
  EXPECT_EQ(R.CallsInlined, 0u);
  EXPECT_EQ(R.ProceduresRemoved, 0u) << "f stays, it is still called";
}

TEST(Inlining, SizeCapSkipsBigCallees) {
  auto M = lowerOk("proc big(x) { var i; do i = 0, 9 { x = x + i; } }\n"
                   "proc main() { var v; call big(v); print v; }");
  InlineOptions Opts;
  Opts.MaxCalleeInstructions = 3;
  InlineResult R = inlineCalls(*M, Opts);
  EXPECT_EQ(R.CallsInlined, 0u);
}

TEST(Inlining, GrowthCapStopsIntegration) {
  // Ten sites of a callee; a tight budget integrates only some of them.
  std::string Src = "proc w(x) { x = x + 1; x = x * 2; x = x - 3; }\n"
                    "proc main() { var v;\n";
  for (int I = 0; I != 10; ++I)
    Src += "  call w(v);\n";
  Src += "  print v;\n}\n";
  auto M = lowerOk(Src);
  InlineOptions Opts;
  Opts.MaxGrowthFactor = 1.5;
  Opts.RemoveDeadProcedures = false;
  unsigned Before = M->instructionCount();
  InlineResult R = inlineCalls(*M, Opts);
  EXPECT_GT(R.CallsInlined, 0u);
  EXPECT_LT(R.CallsInlined, 10u);
  EXPECT_LE(M->instructionCount(),
            static_cast<unsigned>(Before * 1.5) + 20);
  ExecutionResult Exec = interpret(*M);
  EXPECT_TRUE(Exec.ok());
}

class InliningPreservesBehavior : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(InliningPreservesBehavior, GeneratedPrograms) {
  GeneratorConfig Config;
  Config.Seed = GetParam();
  Config.NumProcs = 5;
  auto M = lowerOk(generateProgram(Config));
  ExecutionOptions Exec;
  Exec.MaxSteps = 2'000'000;
  Exec.InputSeed = GetParam();
  ExecutionResult Before = interpret(*M, Exec);

  InlineResult R = inlineCalls(*M);
  expectVerifies(*M, VerifyMode::PreSSA);
  ExecutionResult After = interpret(*M, Exec);
  EXPECT_EQ(Before.TheStatus, After.TheStatus) << "inlined " << R.CallsInlined;
  EXPECT_EQ(Before.Output, After.Output);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InliningPreservesBehavior,
                         ::testing::Range<uint64_t>(600, 615));

TEST(Inlining, SuiteProgramsPreserveOutput) {
  for (const char *Name : {"trfd", "qcd", "ocean", "linpackd"}) {
    auto M = loadSuiteModule(*findSuiteProgram(Name));
    ExecutionResult Before = interpret(*M);
    inlineCalls(*M);
    expectVerifies(*M, VerifyMode::PreSSA);
    ExecutionResult After = interpret(*M);
    EXPECT_EQ(Before.Output, After.Output) << Name;
  }
}

//===----------------------------------------------------------------------===//
// The Wegman-Zadeck comparison itself.
//===----------------------------------------------------------------------===//

TEST(IntegrationIPCP, FindsTheFrameworksConstantsAtGrowthCost) {
  auto M = lowerOk("proc kernel(n, w) { var i; do i = 1, n { print i * w; "
                   "} }\n"
                   "proc main() { call kernel(4, 2); call kernel(8, 2); }");
  // The framework meets 4 /\ 8 to bottom for n; integration keeps the
  // paths apart and each copy sees its own constant.
  IPCPResult Framework = runIPCP(*M);
  IntegrationResult Integrated = runIntegrationBasedIPCP(*M);
  EXPECT_GT(Integrated.ConstantRefs, Framework.TotalConstantRefs);
  EXPECT_GT(Integrated.Inlining.InstructionsAfter,
            Integrated.Inlining.InstructionsBefore)
      << "the precision is bought with code growth";
}

TEST(IntegrationIPCP, DoesNotMutateTheInput) {
  auto M = lowerOk("proc f(a) { print a; }\nproc main() { call f(3); }");
  unsigned Before = M->instructionCount();
  runIntegrationBasedIPCP(*M);
  EXPECT_EQ(M->instructionCount(), Before);
}

TEST(IntegrationIPCP, RecursionLimitsIntegration) {
  auto M = lowerOk("proc f(n, k) { if (n > 0) { call f(n - 1, k); } print "
                   "k; }\n"
                   "proc main() { call f(3, 42); }");
  IntegrationResult R = runIntegrationBasedIPCP(*M);
  // f cannot be integrated; the intraprocedural pass learns nothing
  // about k, while the framework finds it.
  IPCPResult Framework = runIPCP(*M);
  EXPECT_LT(R.ConstantRefs, Framework.TotalConstantRefs)
      << "recursion is where the jump-function framework wins outright";
}

} // namespace
