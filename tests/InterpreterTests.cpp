//===- tests/InterpreterTests.cpp - reference interpreter tests -----------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "interp/Interpreter.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

ExecutionResult run(const std::string &Source, ExecutionOptions Opts = {}) {
  auto M = lowerOk(Source);
  return interpret(*M, Opts);
}

TEST(Interpreter, ArithmeticAndPrint) {
  ExecutionResult R = run("proc main() { print 2 + 3 * 4; print 10 / 3; "
                          "print -7 % 3; print 10 - 4 - 3; }");
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Output,
            (std::vector<ConstantValue>{14, 3, -1, 3}));
}

TEST(Interpreter, ComparisonsAndNot) {
  ExecutionResult R = run(
      "proc main() { print 1 < 2; print 2 <= 1; print 3 == 3; print !5; "
      "print !0; }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{1, 0, 1, 0, 1}));
}

TEST(Interpreter, LocalsAndGlobalsZeroInitialized) {
  ExecutionResult R = run("global g;\nproc main() { var x; print x; print "
                          "g; }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{0, 0}));
}

TEST(Interpreter, ControlFlow) {
  ExecutionResult R = run(
      "proc main() { var i, s; do i = 1, 5 { if (i % 2 == 0) { s = s + i; } "
      "} while (s < 10) { s = s + 10; } print s; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{16}));
}

TEST(Interpreter, DoLoopNegativeStep) {
  ExecutionResult R =
      run("proc main() { var i; do i = 5, 1, -2 { print i; } }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{5, 3, 1}));
}

TEST(Interpreter, DoLoopZeroTrip) {
  ExecutionResult R =
      run("proc main() { var i; do i = 3, 2 { print i; } print 99; }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{99}));
}

TEST(Interpreter, DoLoopBoundsEvaluatedOnce) {
  // Fortran semantics: modifying the bound inside the loop does not
  // change the trip count.
  ExecutionResult R = run("global n;\nproc main() { var i; n = 3; do i = 1, "
                          "n { n = 100; print i; } }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{1, 2, 3}));
}

TEST(Interpreter, ByReferenceVariableActual) {
  ExecutionResult R = run("proc bump(x) { x = x + 1; }\n"
                          "proc main() { var v; v = 4; call bump(v); print "
                          "v; }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{5}));
}

TEST(Interpreter, ExpressionActualUpdatesDiscarded) {
  ExecutionResult R = run("proc bump(x) { x = x + 1; }\n"
                          "proc main() { var v; v = 4; call bump(v + 0); "
                          "print v; }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{4}));
}

TEST(Interpreter, LiteralActualUpdatesDiscarded) {
  ExecutionResult R = run("proc clobber(x) { x = 9; }\n"
                          "proc main() { call clobber(7); print 7; }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{7}));
}

TEST(Interpreter, GlobalSharedAcrossProcedures) {
  ExecutionResult R = run("global g;\n"
                          "proc inc() { g = g + 10; }\n"
                          "proc main() { call inc(); call inc(); print g; }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{20}));
}

TEST(Interpreter, AliasedByRefActualsShareOneCell) {
  // The analysis assumes Fortran's no-alias rule, but the interpreter
  // implements real aliasing: the second formal's store wins.
  ExecutionResult R = run("proc two(a, b) { a = 1; b = 2; }\n"
                          "proc main() { var v; call two(v, v); print v; }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{2}));
}

TEST(Interpreter, Arrays) {
  ExecutionResult R = run(
      "proc main() { var a[4], i; do i = 0, 3 { a[i] = i * i; } print a[0] "
      "+ a[1] + a[2] + a[3]; }");
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{14}));
}

TEST(Interpreter, ArrayOutOfBoundsTraps) {
  ExecutionResult R = run("proc main() { var a[3]; a[3] = 1; }");
  EXPECT_EQ(R.TheStatus, ExecutionResult::Status::Trap);
  EXPECT_NE(R.TrapMessage.find("out of bounds"), std::string::npos);

  ExecutionResult R2 = run("proc main() { var a[3]; print a[0 - 1]; }");
  EXPECT_EQ(R2.TheStatus, ExecutionResult::Status::Trap);
}

TEST(Interpreter, DivisionByZeroTraps) {
  ExecutionResult R = run("proc main() { var x; print 5 / x; }");
  EXPECT_EQ(R.TheStatus, ExecutionResult::Status::Trap);
  EXPECT_NE(R.TrapMessage.find("arithmetic fault"), std::string::npos);
}

TEST(Interpreter, OverflowTraps) {
  ExecutionResult R = run("proc main() { var x, i; x = 2; do i = 1, 64 { x "
                          "= x * 2; } print x; }");
  EXPECT_EQ(R.TheStatus, ExecutionResult::Status::Trap);
}

TEST(Interpreter, ReadConsumesProvidedInputs) {
  ExecutionOptions Opts;
  Opts.Inputs = {11, 22};
  ExecutionResult R = run(
      "proc main() { var a, b; read a; read b; print a + b; }", Opts);
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{33}));
}

TEST(Interpreter, ReadFallsBackToDeterministicStream) {
  ExecutionOptions Opts;
  Opts.InputSeed = 7;
  ExecutionResult R1 = run("proc main() { var a; read a; print a; }", Opts);
  ExecutionResult R2 = run("proc main() { var a; read a; print a; }", Opts);
  ASSERT_EQ(R1.Output.size(), 1u);
  EXPECT_EQ(R1.Output, R2.Output) << "same seed, same stream";
  ExecutionOptions Other;
  Other.InputSeed = 8;
  ExecutionResult R3 = run("proc main() { var a; read a; print a; }", Other);
  EXPECT_NE(R1.Output, R3.Output) << "different seed, different stream";
}

TEST(Interpreter, FuelExhaustion) {
  ExecutionOptions Opts;
  Opts.MaxSteps = 100;
  ExecutionResult R = run(
      "proc main() { var x; while (1) { x = x + 0; } }", Opts);
  EXPECT_EQ(R.TheStatus, ExecutionResult::Status::OutOfFuel);
  EXPECT_LE(R.Steps, 101u);
}

TEST(Interpreter, CallDepthGuard) {
  ExecutionOptions Opts;
  Opts.MaxCallDepth = 10;
  ExecutionResult R = run("proc f() { call f(); }\nproc main() { call f(); }",
                          Opts);
  EXPECT_EQ(R.TheStatus, ExecutionResult::Status::OutOfFuel);
}

TEST(Interpreter, Recursion) {
  ExecutionResult R = run("proc fib(n, out) {\n"
                          "  var a, b;\n"
                          "  if (n < 2) { out = n; return; }\n"
                          "  call fib(n - 1, a);\n"
                          "  call fib(n - 2, b);\n"
                          "  out = a + b;\n"
                          "}\n"
                          "proc main() { var r; call fib(10, r); print r; }");
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.Output, (std::vector<ConstantValue>{55}));
}

TEST(Interpreter, EntrySnapshotsRecordFormalsAndGlobals) {
  // Keep the module alive: snapshots reference its procedures/variables.
  auto M = lowerOk("global g;\n"
                   "proc f(a) { g = g + a; }\n"
                   "proc main() { g = 5; call f(2); call f(3); }");
  ExecutionResult R = interpret(*M);
  ASSERT_EQ(R.Entries.size(), 3u) << "main, f, f";
  const EntrySnapshot &First = R.Entries[1];
  EXPECT_EQ(First.Proc->getName(), "f");
  // Find a and g by name.
  ConstantValue AVal = -999, GVal = -999;
  for (const auto &[Var, Val] : First.Values) {
    if (Var->getName() == "a")
      AVal = Val;
    if (Var->getName() == "g")
      GVal = Val;
  }
  EXPECT_EQ(AVal, 2);
  EXPECT_EQ(GVal, 5);
  // Second call to f sees the updated global.
  for (const auto &[Var, Val] : R.Entries[2].Values)
    if (Var->getName() == "g") {
      EXPECT_EQ(Val, 7);
    }
}

TEST(Interpreter, SnapshotsCanBeDisabled) {
  ExecutionOptions Opts;
  Opts.RecordEntrySnapshots = false;
  ExecutionResult R = run("proc main() { print 1; }", Opts);
  EXPECT_TRUE(R.Entries.empty());
}

TEST(Interpreter, StepsAreCounted) {
  ExecutionResult R = run("proc main() { print 1; print 2; }");
  EXPECT_GE(R.Steps, 3u) << "two prints and a return at least";
}

} // namespace
