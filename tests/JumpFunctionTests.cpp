//===- tests/JumpFunctionTests.cpp - symbolic exprs & jump functions ------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/JumpFunction.h"
#include "ir/Module.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

/// Fresh variables for building expressions by hand.
struct ExprFixture : ::testing::Test {
  Module M;
  Procedure *P = M.createProcedure("p");
  Variable *A = P->addFormal("a");
  Variable *B = P->addFormal("b");
  Variable *G = M.addGlobal("g");
  SymExprContext Ctx;
};

TEST_F(ExprFixture, ConstantsAreHashConsed) {
  EXPECT_EQ(Ctx.getConst(5), Ctx.getConst(5));
  EXPECT_NE(Ctx.getConst(5), Ctx.getConst(6));
  EXPECT_EQ(Ctx.getConst(5)->getConst(), 5);
}

TEST_F(ExprFixture, FormalsAreHashConsed) {
  EXPECT_EQ(Ctx.getFormal(A), Ctx.getFormal(A));
  EXPECT_NE(Ctx.getFormal(A), Ctx.getFormal(B));
}

TEST_F(ExprFixture, StructurallyEqualTreesShareOneNode) {
  const SymExpr *E1 = Ctx.getBinary(BinaryOp::Add, Ctx.getFormal(A),
                                    Ctx.getConst(1));
  const SymExpr *E2 = Ctx.getBinary(BinaryOp::Add, Ctx.getFormal(A),
                                    Ctx.getConst(1));
  EXPECT_EQ(E1, E2) << "this pointer equality is the value numbering";
}

TEST_F(ExprFixture, ConstantFolding) {
  const SymExpr *E =
      Ctx.getBinary(BinaryOp::Mul, Ctx.getConst(6), Ctx.getConst(7));
  ASSERT_NE(E, nullptr);
  EXPECT_TRUE(E->isConst());
  EXPECT_EQ(E->getConst(), 42);
}

TEST_F(ExprFixture, FoldingThatWouldTrapDeclines) {
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Div, Ctx.getConst(1), Ctx.getConst(0)),
            nullptr);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Mul, Ctx.getConst(INT64_MAX),
                          Ctx.getConst(2)),
            nullptr);
}

TEST_F(ExprFixture, NullOperandsPropagate) {
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Add, nullptr, Ctx.getConst(1)), nullptr);
  EXPECT_EQ(Ctx.getUnary(UnaryOp::Neg, nullptr), nullptr);
}

TEST_F(ExprFixture, AlgebraicIdentities) {
  const SymExpr *VarA = Ctx.getFormal(A);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Add, VarA, Ctx.getConst(0)), VarA);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Add, Ctx.getConst(0), VarA), VarA);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Sub, VarA, Ctx.getConst(0)), VarA);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::Mul, VarA, Ctx.getConst(1)), VarA);
  const SymExpr *Zero = Ctx.getBinary(BinaryOp::Mul, VarA, Ctx.getConst(0));
  ASSERT_NE(Zero, nullptr);
  EXPECT_EQ(Zero->getConst(), 0);
  const SymExpr *SelfSub = Ctx.getBinary(BinaryOp::Sub, VarA, VarA);
  ASSERT_NE(SelfSub, nullptr);
  EXPECT_EQ(SelfSub->getConst(), 0);
  EXPECT_EQ(Ctx.getUnary(UnaryOp::Neg, Ctx.getUnary(UnaryOp::Neg, VarA)),
            VarA);
}

TEST_F(ExprFixture, ReflexiveComparisonsFold) {
  const SymExpr *VarA = Ctx.getFormal(A);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::CmpEq, VarA, VarA)->getConst(), 1);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::CmpLe, VarA, VarA)->getConst(), 1);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::CmpNe, VarA, VarA)->getConst(), 0);
  EXPECT_EQ(Ctx.getBinary(BinaryOp::CmpLt, VarA, VarA)->getConst(), 0);
}

TEST_F(ExprFixture, CommutativeCanonicalization) {
  const SymExpr *AB =
      Ctx.getBinary(BinaryOp::Add, Ctx.getFormal(A), Ctx.getFormal(B));
  const SymExpr *BA =
      Ctx.getBinary(BinaryOp::Add, Ctx.getFormal(B), Ctx.getFormal(A));
  EXPECT_EQ(AB, BA) << "a + b and b + a value-number identically";
  // Subtraction is not commutative.
  EXPECT_NE(Ctx.getBinary(BinaryOp::Sub, Ctx.getFormal(A), Ctx.getFormal(B)),
            Ctx.getBinary(BinaryOp::Sub, Ctx.getFormal(B), Ctx.getFormal(A)));
}

TEST_F(ExprFixture, SizeCapDeclinesHugeTrees) {
  SymExprContext Small(/*MaxNodes=*/7);
  const SymExpr *E = Small.getFormal(A);
  // Keep doubling until the cap must trigger: a - (a - (a - ...)) to
  // avoid the identity folds.
  const SymExpr *Grown = E;
  for (int I = 0; I != 10 && Grown; ++I)
    Grown = Small.getBinary(BinaryOp::Add, Grown,
                            Small.getBinary(BinaryOp::Mul, Grown,
                                            Small.getFormal(B)));
  EXPECT_EQ(Grown, nullptr) << "beyond MaxNodes the builder declines";
}

TEST_F(ExprFixture, CompareIsTotalAndDeterministic) {
  const SymExpr *Exprs[] = {
      Ctx.getConst(1), Ctx.getConst(2), Ctx.getFormal(A), Ctx.getFormal(B),
      Ctx.getBinary(BinaryOp::Add, Ctx.getFormal(A), Ctx.getConst(1)),
      Ctx.getUnary(UnaryOp::Neg, Ctx.getFormal(B))};
  for (const SymExpr *X : Exprs)
    for (const SymExpr *Y : Exprs) {
      int XY = SymExprContext::compare(X, Y);
      int YX = SymExprContext::compare(Y, X);
      EXPECT_EQ(XY == 0, X == Y);
      EXPECT_EQ(XY < 0, YX > 0);
    }
}

TEST_F(ExprFixture, Substitution) {
  // (a * 2 + b) with a := 10, b := g  ==>  20 + g
  const SymExpr *E = Ctx.getBinary(
      BinaryOp::Add,
      Ctx.getBinary(BinaryOp::Mul, Ctx.getFormal(A), Ctx.getConst(2)),
      Ctx.getFormal(B));
  const SymExpr *Result = Ctx.substitute(E, [&](Variable *Var) {
    if (Var == A)
      return Ctx.getConst(10);
    return Ctx.getFormal(G);
  });
  ASSERT_NE(Result, nullptr);
  EXPECT_EQ(Result, Ctx.getBinary(BinaryOp::Add, Ctx.getConst(20),
                                  Ctx.getFormal(G)));
}

TEST_F(ExprFixture, SubstitutionBottomPropagates) {
  const SymExpr *E =
      Ctx.getBinary(BinaryOp::Add, Ctx.getFormal(A), Ctx.getConst(1));
  EXPECT_EQ(Ctx.substitute(E, [](Variable *) -> const SymExpr * {
              return nullptr;
            }),
            nullptr);
}

TEST_F(ExprFixture, Rendering) {
  const SymExpr *E = Ctx.getBinary(
      BinaryOp::Add,
      Ctx.getBinary(BinaryOp::Mul, Ctx.getFormal(A), Ctx.getConst(2)),
      Ctx.getConst(1));
  EXPECT_EQ(E->str(), "((a * 2) + 1)");
}

//===----------------------------------------------------------------------===//
// JumpFunction: support and evaluation (paper Section 2).
//===----------------------------------------------------------------------===//

TEST_F(ExprFixture, BottomJumpFunction) {
  JumpFunction JF = JumpFunction::bottom();
  EXPECT_TRUE(JF.isBottom());
  EXPECT_TRUE(JF.support().empty());
  EXPECT_TRUE(JF.evaluate({}).isBottom());
  EXPECT_EQ(JF.str(), "_|_");
}

TEST_F(ExprFixture, ConstantJumpFunctionIgnoresEnvironment) {
  JumpFunction JF = JumpFunction::constant(Ctx, 99);
  EXPECT_TRUE(JF.isConstant());
  EXPECT_TRUE(JF.support().empty());
  LatticeValue V = JF.evaluate({});
  ASSERT_TRUE(V.isConstant());
  EXPECT_EQ(V.getConstant(), 99);
}

TEST_F(ExprFixture, SupportIsTheExactVariableSet) {
  // support(a*2 + a + b) = {a, b}, deduplicated and ID-ordered.
  const SymExpr *E = Ctx.getBinary(
      BinaryOp::Add,
      Ctx.getBinary(BinaryOp::Add,
                    Ctx.getBinary(BinaryOp::Mul, Ctx.getFormal(A),
                                  Ctx.getConst(2)),
                    Ctx.getFormal(A)),
      Ctx.getFormal(B));
  JumpFunction JF(E);
  ASSERT_EQ(JF.support().size(), 2u);
  EXPECT_EQ(JF.support()[0], A);
  EXPECT_EQ(JF.support()[1], B);
}

TEST_F(ExprFixture, PassThroughEvaluation) {
  JumpFunction JF(Ctx.getFormal(A));
  EXPECT_TRUE(JF.isPassThrough());
  LatticeEnv Env;
  Env[A] = LatticeValue::constant(5);
  EXPECT_EQ(JF.evaluate(Env).getConstant(), 5);
  Env[A] = LatticeValue::bottom();
  EXPECT_TRUE(JF.evaluate(Env).isBottom());
  EXPECT_TRUE(JF.evaluate({}).isTop()) << "unlowered callers stay top";
}

TEST_F(ExprFixture, PolynomialEvaluationRules) {
  // f(a, b) = a * b + 1
  JumpFunction JF(Ctx.getBinary(
      BinaryOp::Add,
      Ctx.getBinary(BinaryOp::Mul, Ctx.getFormal(A), Ctx.getFormal(B)),
      Ctx.getConst(1)));
  LatticeEnv Env;
  Env[A] = LatticeValue::constant(6);
  Env[B] = LatticeValue::constant(7);
  EXPECT_EQ(JF.evaluate(Env).getConstant(), 43);

  Env[B] = LatticeValue::bottom();
  EXPECT_TRUE(JF.evaluate(Env).isBottom()) << "any bottom support is bottom";

  Env[B] = LatticeValue::top();
  EXPECT_TRUE(JF.evaluate(Env).isTop()) << "top support means wait";

  // Bottom wins over top.
  Env[A] = LatticeValue::bottom();
  EXPECT_TRUE(JF.evaluate(Env).isBottom());
}

TEST_F(ExprFixture, EvaluationOverflowIsBottom) {
  JumpFunction JF(
      Ctx.getBinary(BinaryOp::Mul, Ctx.getFormal(A), Ctx.getFormal(B)));
  LatticeEnv Env;
  Env[A] = LatticeValue::constant(INT64_MAX);
  Env[B] = LatticeValue::constant(2);
  EXPECT_TRUE(JF.evaluate(Env).isBottom());
}

} // namespace
