//===- tests/LatticeTests.cpp - Figure 1 lattice tests --------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Verifies the constant propagation lattice of Figure 1: the meet rule
// table, the algebraic laws of a meet-semilattice, and the bounded-depth
// property the complexity argument of Section 3.1.5 rests on.
//
//===----------------------------------------------------------------------===//

#include "core/Lattice.h"

#include <gtest/gtest.h>

#include <vector>

using namespace ipcp;

namespace {

const LatticeValue Top = LatticeValue::top();
const LatticeValue Bottom = LatticeValue::bottom();

LatticeValue C(ConstantValue V) { return LatticeValue::constant(V); }

TEST(Lattice, Figure1MeetTable) {
  // T /\ any = any
  EXPECT_EQ(meet(Top, Top), Top);
  EXPECT_EQ(meet(Top, C(7)), C(7));
  EXPECT_EQ(meet(Top, Bottom), Bottom);
  EXPECT_EQ(meet(C(7), Top), C(7));
  EXPECT_EQ(meet(Bottom, Top), Bottom);
  // ci /\ cj = ci if ci == cj
  EXPECT_EQ(meet(C(7), C(7)), C(7));
  // ci /\ cj = _|_ if ci != cj
  EXPECT_EQ(meet(C(7), C(8)), Bottom);
  // _|_ /\ any = _|_
  EXPECT_EQ(meet(Bottom, C(7)), Bottom);
  EXPECT_EQ(meet(Bottom, Bottom), Bottom);
}

TEST(Lattice, Predicates) {
  EXPECT_TRUE(Top.isTop());
  EXPECT_TRUE(Bottom.isBottom());
  EXPECT_TRUE(C(0).isConstant());
  EXPECT_EQ(C(-3).getConstant(), -3);
  EXPECT_FALSE(C(0).isTop());
  EXPECT_FALSE(C(0).isBottom());
}

TEST(Lattice, DefaultConstructionIsTop) {
  // "The value T is used as an initial approximation for all parameters."
  EXPECT_TRUE(LatticeValue().isTop());
}

TEST(Lattice, EqualityDistinguishesConstants) {
  EXPECT_EQ(C(4), C(4));
  EXPECT_NE(C(4), C(5));
  EXPECT_NE(C(4), Top);
  EXPECT_NE(C(4), Bottom);
  EXPECT_NE(Top, Bottom);
}

TEST(Lattice, StrictOrder) {
  EXPECT_TRUE(Bottom.strictlyBelow(Top));
  EXPECT_TRUE(Bottom.strictlyBelow(C(1)));
  EXPECT_TRUE(C(1).strictlyBelow(Top));
  EXPECT_FALSE(Top.strictlyBelow(C(1)));
  EXPECT_FALSE(C(1).strictlyBelow(C(2)))
      << "distinct constants are incomparable";
  EXPECT_FALSE(C(1).strictlyBelow(C(1)));
}

TEST(Lattice, HeightIsTwo) {
  // "the value associated with some formal parameter x can be lowered at
  // most twice."
  EXPECT_EQ(Top.height(), 2u);
  EXPECT_EQ(C(123).height(), 1u);
  EXPECT_EQ(Bottom.height(), 0u);
}

TEST(Lattice, MeetNeverRaises) {
  const LatticeValue Samples[] = {Top, Bottom, C(0), C(1), C(-5)};
  for (LatticeValue A : Samples)
    for (LatticeValue B : Samples) {
      LatticeValue M = meet(A, B);
      EXPECT_TRUE(M == A || M.strictlyBelow(A));
      EXPECT_TRUE(M == B || M.strictlyBelow(B));
    }
}

TEST(Lattice, Rendering) {
  EXPECT_EQ(Top.str(), "T");
  EXPECT_EQ(Bottom.str(), "_|_");
  EXPECT_EQ(C(42).str(), "42");
  EXPECT_EQ(C(-1).str(), "-1");
}

//===----------------------------------------------------------------------===//
// Algebraic laws, swept over a deterministic pseudo-random sample.
//===----------------------------------------------------------------------===//

class LatticeAlgebra : public ::testing::TestWithParam<uint64_t> {
protected:
  std::vector<LatticeValue> sample() {
    std::vector<LatticeValue> Values = {Top, Bottom};
    uint64_t State = GetParam() * 0x9E3779B97F4A7C15ULL + 1;
    for (int I = 0; I != 6; ++I) {
      State ^= State << 13;
      State ^= State >> 7;
      State ^= State << 17;
      Values.push_back(C(static_cast<ConstantValue>(State % 17) - 8));
    }
    return Values;
  }
};

TEST_P(LatticeAlgebra, MeetIsCommutative) {
  std::vector<LatticeValue> Values = sample();
  for (LatticeValue A : Values)
    for (LatticeValue B : Values)
      EXPECT_EQ(meet(A, B), meet(B, A));
}

TEST_P(LatticeAlgebra, MeetIsAssociative) {
  std::vector<LatticeValue> Values = sample();
  for (LatticeValue A : Values)
    for (LatticeValue B : Values)
      for (LatticeValue X : Values)
        EXPECT_EQ(meet(meet(A, B), X), meet(A, meet(B, X)));
}

TEST_P(LatticeAlgebra, MeetIsIdempotent) {
  for (LatticeValue A : sample())
    EXPECT_EQ(meet(A, A), A);
}

TEST_P(LatticeAlgebra, TopIsIdentityBottomAbsorbs) {
  for (LatticeValue A : sample()) {
    EXPECT_EQ(meet(Top, A), A);
    EXPECT_EQ(meet(Bottom, A), Bottom);
  }
}

TEST_P(LatticeAlgebra, DescendingChainsEndWithinTwoSteps) {
  // Any strictly descending chain has length at most 3 (T > c > _|_):
  // verify by exhausting chains over the sample.
  std::vector<LatticeValue> Values = sample();
  for (LatticeValue A : Values)
    for (LatticeValue B : Values)
      for (LatticeValue X : Values) {
        // If A > B > X (strictly), A must be T and X must be _|_.
        if (B.strictlyBelow(A) && X.strictlyBelow(B)) {
          EXPECT_TRUE(A.isTop());
          EXPECT_TRUE(X.isBottom());
        }
      }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeAlgebra,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
