//===- tests/LexerTests.cpp - MiniFort lexer tests ------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace ipcp;

namespace {

std::vector<Token> lex(const std::string &Source, DiagnosticsEngine &Diags) {
  Lexer Lex(Source, Diags);
  return Lex.lexAll();
}

std::vector<TokenKind> kinds(const std::string &Source) {
  DiagnosticsEngine Diags;
  std::vector<TokenKind> Kinds;
  for (const Token &Tok : lex(Source, Diags))
    Kinds.push_back(Tok.Kind);
  EXPECT_FALSE(Diags.hasErrors());
  return Kinds;
}

TEST(Lexer, EmptyInputIsJustEof) {
  EXPECT_EQ(kinds(""), std::vector<TokenKind>{TokenKind::Eof});
  EXPECT_EQ(kinds("   \n\t  "), std::vector<TokenKind>{TokenKind::Eof});
}

TEST(Lexer, Identifiers) {
  DiagnosticsEngine Diags;
  std::vector<Token> Tokens = lex("foo _bar x1 loop_counter", Diags);
  ASSERT_EQ(Tokens.size(), 5u);
  for (int I = 0; I != 4; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "foo");
  EXPECT_EQ(Tokens[1].Text, "_bar");
  EXPECT_EQ(Tokens[2].Text, "x1");
}

TEST(Lexer, Keywords) {
  std::vector<TokenKind> Expected = {
      TokenKind::KwGlobal, TokenKind::KwProc,  TokenKind::KwVar,
      TokenKind::KwArray,  TokenKind::KwIf,    TokenKind::KwElse,
      TokenKind::KwWhile,  TokenKind::KwDo,    TokenKind::KwCall,
      TokenKind::KwPrint,  TokenKind::KwRead,  TokenKind::KwReturn,
      TokenKind::Eof};
  EXPECT_EQ(
      kinds("global proc var array if else while do call print read return"),
      Expected);
}

TEST(Lexer, KeywordPrefixIsIdentifier) {
  DiagnosticsEngine Diags;
  std::vector<Token> Tokens = lex("iffy globalx doit", Diags);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(Lexer, IntegerLiterals) {
  DiagnosticsEngine Diags;
  std::vector<Token> Tokens = lex("0 7 1234567890", Diags);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 7);
  EXPECT_EQ(Tokens[2].IntValue, 1234567890);
}

TEST(Lexer, IntegerLiteralOverflowIsAnError) {
  DiagnosticsEngine Diags;
  std::vector<Token> Tokens = lex("99999999999999999999999", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Error);
}

TEST(Lexer, MaxInt64Literal) {
  DiagnosticsEngine Diags;
  std::vector<Token> Tokens = lex("9223372036854775807", Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Tokens[0].IntValue, 9223372036854775807LL);
}

TEST(Lexer, Operators) {
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,    TokenKind::Minus,     TokenKind::Star,
      TokenKind::Slash,   TokenKind::Percent,   TokenKind::Assign,
      TokenKind::EqEq,    TokenKind::NotEq,     TokenKind::Less,
      TokenKind::LessEq,  TokenKind::Greater,   TokenKind::GreaterEq,
      TokenKind::Not,     TokenKind::Eof};
  EXPECT_EQ(kinds("+ - * / % = == != < <= > >= !"), Expected);
}

TEST(Lexer, MaximalMunchForComparisons) {
  // "<=" is one token, "< =" is two.
  EXPECT_EQ(kinds("<="),
            (std::vector<TokenKind>{TokenKind::LessEq, TokenKind::Eof}));
  EXPECT_EQ(kinds("< ="), (std::vector<TokenKind>{TokenKind::Less,
                                                  TokenKind::Assign,
                                                  TokenKind::Eof}));
  EXPECT_EQ(kinds("==="),
            (std::vector<TokenKind>{TokenKind::EqEq, TokenKind::Assign,
                                    TokenKind::Eof}));
}

TEST(Lexer, Punctuation) {
  std::vector<TokenKind> Expected = {
      TokenKind::LParen,   TokenKind::RParen,   TokenKind::LBrace,
      TokenKind::RBrace,   TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Comma,    TokenKind::Semicolon, TokenKind::Eof};
  EXPECT_EQ(kinds("( ) { } [ ] , ;"), Expected);
}

TEST(Lexer, LineComments) {
  EXPECT_EQ(kinds("// whole line\nx // trailing\n// eof comment"),
            (std::vector<TokenKind>{TokenKind::Identifier, TokenKind::Eof}));
}

TEST(Lexer, SlashVersusComment) {
  EXPECT_EQ(kinds("a / b"),
            (std::vector<TokenKind>{TokenKind::Identifier, TokenKind::Slash,
                                    TokenKind::Identifier, TokenKind::Eof}));
}

TEST(Lexer, SourceLocations) {
  DiagnosticsEngine Diags;
  std::vector<Token> Tokens = lex("a\n  b\n\nc", Diags);
  EXPECT_EQ(Tokens[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(Tokens[1].Loc, SourceLoc(2, 3));
  EXPECT_EQ(Tokens[2].Loc, SourceLoc(4, 1));
}

TEST(Lexer, UnknownCharacterReportsError) {
  DiagnosticsEngine Diags;
  std::vector<Token> Tokens = lex("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
  // Lexing continues after the bad character.
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
}

TEST(Lexer, EofIsSticky) {
  DiagnosticsEngine Diags;
  Lexer Lex("x", Diags);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Identifier);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Eof);
  EXPECT_EQ(Lex.next().Kind, TokenKind::Eof);
}

TEST(Lexer, TokenKindNamesAreStable) {
  EXPECT_STREQ(tokenKindName(TokenKind::KwProc), "'proc'");
  EXPECT_STREQ(tokenKindName(TokenKind::Identifier), "identifier");
  EXPECT_STREQ(tokenKindName(TokenKind::LessEq), "'<='");
}

} // namespace
