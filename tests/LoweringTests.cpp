//===- tests/LoweringTests.cpp - AST to IR lowering tests -----------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

TEST(Lowering, EmptyMainHasEntryAndExit) {
  auto M = lowerOk("proc main() { }");
  Procedure *Main = getProc(*M, "main");
  ASSERT_EQ(Main->blocks().size(), 2u);
  EXPECT_EQ(Main->getEntryBlock()->getName(), "entry");
  EXPECT_NE(Main->getExitBlock(), nullptr);
  EXPECT_TRUE(isa<RetInst>(Main->getExitBlock()->getTerminator()));
}

TEST(Lowering, ScalarLocalsZeroInitialized) {
  auto M = lowerOk("proc main() { var x, y; print x + y; }");
  Procedure *Main = getProc(*M, "main");
  unsigned ZeroStores = 0;
  for (const std::unique_ptr<Instruction> &Inst :
       Main->getEntryBlock()->instructions()) {
    auto *Store = dyn_cast<StoreInst>(Inst.get());
    if (!Store)
      continue;
    auto *C = dyn_cast<ConstantInt>(Store->getValueOperand());
    if (C && C->getValue() == 0)
      ++ZeroStores;
  }
  EXPECT_EQ(ZeroStores, 2u);
}

TEST(Lowering, EveryVariableReferenceIsOneLoad) {
  auto M = lowerOk("proc main() { var x, y; y = x + x * x; }");
  Procedure *Main = getProc(*M, "main");
  EXPECT_EQ(countInsts<LoadInst>(*Main), 3u) << "three refs to x";
  EXPECT_EQ(countInsts<StoreInst>(*Main), 3u) << "two zero-inits + y";
}

TEST(Lowering, IfProducesDiamond) {
  auto M = lowerOk(
      "proc main() { var x; if (x > 0) { x = 1; } else { x = 2; } print x; }");
  Procedure *Main = getProc(*M, "main");
  // entry, then, else, merge, exit.
  EXPECT_EQ(Main->blocks().size(), 5u);
  EXPECT_EQ(countInsts<CondBranchInst>(*Main), 1u);
}

TEST(Lowering, IfWithoutElseBranchesToMerge) {
  auto M = lowerOk("proc main() { var x; if (x > 0) { x = 1; } print x; }");
  Procedure *Main = getProc(*M, "main");
  auto *CBr = firstInst<CondBranchInst>(*Main);
  ASSERT_NE(CBr, nullptr);
  EXPECT_NE(CBr->getTrueTarget(), CBr->getFalseTarget());
}

TEST(Lowering, WhileLoopShape) {
  auto M = lowerOk("proc main() { var x; while (x < 3) { x = x + 1; } }");
  Procedure *Main = getProc(*M, "main");
  // entry, header, body, exit-of-loop, proc exit.
  EXPECT_EQ(Main->blocks().size(), 5u);
  // The header has two predecessors: entry and the body (back edge).
  bool FoundLoopHeader = false;
  for (const std::unique_ptr<BasicBlock> &BB : Main->blocks())
    if (BB->predecessors().size() == 2)
      FoundLoopHeader = true;
  EXPECT_TRUE(FoundLoopHeader);
}

TEST(Lowering, DoLoopEvaluatesBoundsOnce) {
  auto M = lowerOk(
      "global g;\nproc main() { var i; do i = 1, g + 5 { g = g + 1; } }");
  Procedure *Main = getProc(*M, "main");
  // The bound expression g+5 is computed in the preheader: exactly one
  // Add of a load with 5 in the entry block.
  unsigned AddsInEntry = 0;
  for (const std::unique_ptr<Instruction> &Inst :
       Main->getEntryBlock()->instructions())
    if (isa<BinaryInst>(Inst.get()))
      ++AddsInEntry;
  EXPECT_EQ(AddsInEntry, 1u);
}

TEST(Lowering, DoLoopNegativeLiteralStepComparesDownward) {
  auto M = lowerOk("proc main() { var i, s; do i = 9, 0, -3 { s = s + i; } }");
  Procedure *Main = getProc(*M, "main");
  bool FoundGe = false;
  for (const std::unique_ptr<BasicBlock> &BB : Main->blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (auto *Bin = dyn_cast<BinaryInst>(Inst.get()))
        if (Bin->getOp() == BinaryOp::CmpGe)
          FoundGe = true;
  EXPECT_TRUE(FoundGe);
}

TEST(Lowering, CallActualClassification) {
  auto M = lowerOk("global g;\n"
                   "proc f(a, b, c, d) { }\n"
                   "proc main() { var x, m[2]; call f(7, x, x + 1, m[0]); }");
  Procedure *Main = getProc(*M, "main");
  auto *Call = firstInst<CallInst>(*Main);
  ASSERT_NE(Call, nullptr);
  ASSERT_EQ(Call->getNumActuals(), 4u);

  EXPECT_TRUE(Call->getActual(0).WasLiteral);
  EXPECT_EQ(Call->getActual(0).ByRefLoc, nullptr);

  EXPECT_FALSE(Call->getActual(1).WasLiteral);
  ASSERT_NE(Call->getActual(1).ByRefLoc, nullptr);
  EXPECT_EQ(Call->getActual(1).ByRefLoc->getName(), "x");

  EXPECT_EQ(Call->getActual(2).ByRefLoc, nullptr) << "expression actual";
  EXPECT_EQ(Call->getActual(3).ByRefLoc, nullptr) << "array element actual";
}

TEST(Lowering, GlobalActualIsByRef) {
  auto M = lowerOk("global g;\nproc f(a) { }\nproc main() { call f(g); }");
  auto *Call = firstInst<CallInst>(*getProc(*M, "main"));
  ASSERT_NE(Call, nullptr);
  ASSERT_NE(Call->getActual(0).ByRefLoc, nullptr);
  EXPECT_TRUE(Call->getActual(0).ByRefLoc->isGlobal());
}

TEST(Lowering, ReturnBranchesToExitAndDropsDeadCode) {
  auto M = lowerOk("proc main() { var x; return; x = 1; print x; }");
  Procedure *Main = getProc(*M, "main");
  // The statements after return are unreachable and removed entirely.
  EXPECT_EQ(countInsts<PrintInst>(*Main), 0u);
  expectVerifies(*M, VerifyMode::PreSSA);
}

TEST(Lowering, ReadLowersToReadPlusStore) {
  auto M = lowerOk("proc main() { var x; read x; }");
  Procedure *Main = getProc(*M, "main");
  EXPECT_EQ(countInsts<ReadInst>(*Main), 1u);
  auto *Read = firstInst<ReadInst>(*Main);
  bool Stored = false;
  for (const std::unique_ptr<Instruction> &Inst :
       Main->getEntryBlock()->instructions())
    if (auto *Store = dyn_cast<StoreInst>(Inst.get()))
      if (Store->getValueOperand() == Read)
        Stored = true;
  EXPECT_TRUE(Stored);
}

TEST(Lowering, ArrayAccessLowering) {
  auto M = lowerOk("proc main() { var a[4], i; a[i] = a[i + 1] * 2; }");
  Procedure *Main = getProc(*M, "main");
  EXPECT_EQ(countInsts<ArrayLoadInst>(*Main), 1u);
  EXPECT_EQ(countInsts<ArrayStoreInst>(*Main), 1u);
}

TEST(Lowering, GlobalsLowerToModuleVariables) {
  auto M = lowerOk("global g, h[3];\nproc main() { g = 1; h[0] = g; }");
  ASSERT_EQ(M->globals().size(), 2u);
  EXPECT_TRUE(M->globals()[0]->isScalar());
  EXPECT_TRUE(M->globals()[1]->isArray());
  EXPECT_EQ(M->globals()[1]->getArraySize(), 3);
}

TEST(Lowering, LocalShadowsGlobalInLoweredIR) {
  auto M = lowerOk("global g;\nproc main() { var g; g = 5; }");
  Procedure *Main = getProc(*M, "main");
  bool StoreTargetsLocal = false;
  for (const std::unique_ptr<BasicBlock> &BB : Main->blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (auto *Store = dyn_cast<StoreInst>(Inst.get()))
        if (auto *C = dyn_cast<ConstantInt>(Store->getValueOperand());
            C && C->getValue() == 5)
          StoreTargetsLocal = Store->getVariable()->isLocal();
  EXPECT_TRUE(StoreTargetsLocal);
}

TEST(Lowering, WholeSuiteVerifies) {
  // Conditions, nesting, early returns, recursion: one bigger program.
  auto M = lowerOk(
      "global depth;\n"
      "proc rec(n) {\n"
      "  if (n <= 0) { return; }\n"
      "  depth = depth + 1;\n"
      "  call rec(n - 1);\n"
      "}\n"
      "proc main() {\n"
      "  var i, acc;\n"
      "  do i = 1, 5 {\n"
      "    if (i % 2 == 0) { acc = acc + i; } else { acc = acc - i; }\n"
      "    while (acc > 3) { acc = acc - 2; }\n"
      "  }\n"
      "  call rec(4);\n"
      "  print acc + depth;\n"
      "}\n");
  expectVerifies(*M, VerifyMode::PreSSA);
  EXPECT_GE(M->instructionCount(), 30u);
}

TEST(Lowering, PrinterMentionsCoreInstructions) {
  auto M = lowerOk("global g;\nproc main() { var x; x = g + 1; print x; }");
  std::string Text = printModule(*M);
  EXPECT_NE(Text.find("load g"), std::string::npos);
  EXPECT_NE(Text.find("store x"), std::string::npos);
  EXPECT_NE(Text.find("print"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

} // namespace
