//===- tests/ModRefTests.cpp - MOD/REF summary tests ----------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/ModRef.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

ModRefInfo computeOn(Module &M) {
  CallGraph CG(M);
  return ModRefInfo::compute(M, CG);
}

TEST(ModRef, DirectFormalModification) {
  auto M = lowerOk("proc f(a, b) { a = 1; print b; }\nproc main() { }");
  ModRefInfo MRI = computeOn(*M);
  Procedure *F = getProc(*M, "f");
  EXPECT_TRUE(MRI.formalMayBeModified(F, 0));
  EXPECT_FALSE(MRI.formalMayBeModified(F, 1));
}

TEST(ModRef, ReadModifiesItsTarget) {
  auto M = lowerOk("proc f(a) { read a; }\nproc main() { }");
  ModRefInfo MRI = computeOn(*M);
  EXPECT_TRUE(MRI.formalMayBeModified(getProc(*M, "f"), 0));
}

TEST(ModRef, DirectGlobalModAndRef) {
  auto M = lowerOk("global g, h;\n"
                   "proc f() { g = h + 1; }\nproc main() { }");
  ModRefInfo MRI = computeOn(*M);
  Procedure *F = getProc(*M, "f");
  Variable *G = M->findGlobal("g");
  Variable *H = M->findGlobal("h");
  EXPECT_TRUE(MRI.modifiedGlobals(F).count(G));
  EXPECT_FALSE(MRI.modifiedGlobals(F).count(H));
  EXPECT_TRUE(MRI.extendedGlobals(F).count(G));
  EXPECT_TRUE(MRI.extendedGlobals(F).count(H));
}

TEST(ModRef, BindingThroughByRefActual) {
  auto M = lowerOk("proc sink(x) { x = 9; }\n"
                   "proc mid(y) { call sink(y); }\n"
                   "proc main() { var v; call mid(v); }");
  ModRefInfo MRI = computeOn(*M);
  EXPECT_TRUE(MRI.formalMayBeModified(getProc(*M, "mid"), 0))
      << "modification flows up through the binding";
}

TEST(ModRef, ExpressionActualDoesNotBind) {
  auto M = lowerOk("proc sink(x) { x = 9; }\n"
                   "proc mid(y) { call sink(y + 0); }\n"
                   "proc main() { var v; call mid(v); }");
  ModRefInfo MRI = computeOn(*M);
  EXPECT_FALSE(MRI.formalMayBeModified(getProc(*M, "mid"), 0))
      << "a hidden temporary absorbs the modification";
}

TEST(ModRef, GlobalEffectsPropagateTransitively) {
  auto M = lowerOk("global g;\n"
                   "proc leaf() { g = 1; }\n"
                   "proc mid() { call leaf(); }\n"
                   "proc top() { call mid(); }\n"
                   "proc main() { call top(); }");
  ModRefInfo MRI = computeOn(*M);
  Variable *G = M->findGlobal("g");
  EXPECT_TRUE(MRI.modifiedGlobals(getProc(*M, "top")).count(G));
  EXPECT_TRUE(MRI.extendedGlobals(getProc(*M, "main")).count(G));
}

TEST(ModRef, GlobalRefsPropagateWithoutMod) {
  auto M = lowerOk("global g;\n"
                   "proc leaf() { print g; }\n"
                   "proc top() { call leaf(); }\n"
                   "proc main() { call top(); }");
  ModRefInfo MRI = computeOn(*M);
  Variable *G = M->findGlobal("g");
  EXPECT_FALSE(MRI.modifiedGlobals(getProc(*M, "top")).count(G));
  EXPECT_TRUE(MRI.extendedGlobals(getProc(*M, "top")).count(G))
      << "referenced globals become extended formals of callers";
}

TEST(ModRef, RecursionReachesFixpoint) {
  auto M = lowerOk("global g;\n"
                   "proc a(n) { if (n > 0) { call b(n - 1); } }\n"
                   "proc b(n) { g = n; if (n > 0) { call a(n - 1); } }\n"
                   "proc main() { call a(3); }");
  ModRefInfo MRI = computeOn(*M);
  Variable *G = M->findGlobal("g");
  EXPECT_TRUE(MRI.modifiedGlobals(getProc(*M, "a")).count(G));
  EXPECT_TRUE(MRI.modifiedGlobals(getProc(*M, "b")).count(G));
}

TEST(ModRef, CallKillsCombineBindingsAndGlobals) {
  auto M = lowerOk("global g;\n"
                   "proc f(a, b) { a = 1; g = 2; print b; }\n"
                   "proc main() { var x, y; call f(x, y); }");
  ModRefInfo MRI = computeOn(*M);
  Procedure *Main = getProc(*M, "main");
  CallGraph CG(*M);
  const CallInst *Call = CG.callSitesIn(Main).front();
  std::vector<Variable *> Kills = MRI.callKills(Call);
  ASSERT_EQ(Kills.size(), 2u);
  // ID order: x was created before g? Globals are created first, so g
  // precedes x.
  EXPECT_TRUE((Kills[0]->getName() == "g" && Kills[1]->getName() == "x") ||
              (Kills[0]->getName() == "x" && Kills[1]->getName() == "g"));
}

TEST(ModRef, CallKillsIgnoreUnmodifiedBindings) {
  auto M = lowerOk("proc f(a) { print a; }\n"
                   "proc main() { var x; call f(x); }");
  ModRefInfo MRI = computeOn(*M);
  CallGraph CG(*M);
  const CallInst *Call = CG.callSitesIn(getProc(*M, "main")).front();
  EXPECT_TRUE(MRI.callKills(Call).empty());
}

TEST(ModRef, WorstCaseKillsEverything) {
  auto M = lowerOk("global g, h;\n"
                   "proc f(a) { print a; }\n"
                   "proc main() { var x; call f(x); }");
  ModRefInfo MRI = ModRefInfo::worstCase(*M);
  EXPECT_TRUE(MRI.isWorstCase());
  Procedure *F = getProc(*M, "f");
  EXPECT_TRUE(MRI.formalMayBeModified(F, 0));
  EXPECT_EQ(MRI.modifiedGlobals(F).size(), 2u);
  CallGraph CG(*M);
  const CallInst *Call = CG.callSitesIn(getProc(*M, "main")).front();
  EXPECT_EQ(MRI.callKills(Call).size(), 3u) << "x, g, and h";
}

TEST(ModRef, WorstCaseIgnoresArrayGlobals) {
  auto M = lowerOk("global g, arr[4];\nproc main() { }");
  ModRefInfo MRI = ModRefInfo::worstCase(*M);
  EXPECT_EQ(MRI.extendedGlobals(getProc(*M, "main")).size(), 1u)
      << "arrays carry no scalar constants";
}

TEST(ModRef, DuplicateKillReportedOnce) {
  auto M = lowerOk("proc f(a, b) { a = 1; b = 2; }\n"
                   "proc main() { var x; call f(x, x); }");
  ModRefInfo MRI = computeOn(*M);
  CallGraph CG(*M);
  const CallInst *Call = CG.callSitesIn(getProc(*M, "main")).front();
  EXPECT_EQ(MRI.callKills(Call).size(), 1u);
}

} // namespace
