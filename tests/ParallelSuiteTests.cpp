//===- tests/ParallelSuiteTests.cpp - SuiteRunner determinism -------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The contract of the parallel suite layer: any number of worker threads
// produces exactly the observable output of a sequential run. Covers the
// SuiteRunner primitive itself (index-ordered results, inline fallback,
// trace merging) and the headline acceptance check — the full
// "ipcp-suite-report-v1" document is byte-identical at 1 and 4 jobs once
// timing fields are excluded.
//
//===----------------------------------------------------------------------===//

#include "core/SuiteRunner.h"
#include "support/Json.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "workload/SuiteReport.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

TEST(SuiteRunner, ResultsLandInTaskIndexOrder) {
  SuiteRunner Runner(4);
  std::vector<size_t> Out(64, 0);
  Runner.run(Out.size(), [&](size_t I) { Out[I] = I * I; });
  for (size_t I = 0; I < Out.size(); ++I)
    EXPECT_EQ(Out[I], I * I);
}

TEST(SuiteRunner, ZeroJobsMeansHardwareConcurrency) {
  EXPECT_EQ(SuiteRunner(0).jobs(), ThreadPool::defaultConcurrency());
  EXPECT_EQ(SuiteRunner().jobs(), ThreadPool::defaultConcurrency());
  EXPECT_EQ(SuiteRunner(3).jobs(), 3u);
}

TEST(SuiteRunner, SingleJobRunsInlineOnCallingThread) {
  SuiteRunner Runner(1);
  std::vector<std::thread::id> Ids(8);
  Runner.run(Ids.size(),
             [&](size_t I) { Ids[I] = std::this_thread::get_id(); });
  for (const std::thread::id &Id : Ids)
    EXPECT_EQ(Id, std::this_thread::get_id());
}

TEST(SuiteRunner, MergesTaskTracesInTaskOrder) {
  Trace Parent;
  Trace *Prev = Trace::setActive(&Parent);
  SuiteRunner Runner(4);
  Runner.run(8, [](size_t I) {
    ScopedTraceSpan Span("task", std::to_string(I));
    traceCounter("ticks");
  });
  Trace::setActive(Prev);

  // One root span per task, in task order regardless of which worker
  // finished first, with the counters from every worker merged.
  ASSERT_EQ(Parent.spans().size(), 8u);
  for (size_t I = 0; I < Parent.spans().size(); ++I) {
    EXPECT_EQ(Parent.spans()[I].Name, "task");
    EXPECT_EQ(Parent.spans()[I].Detail, std::to_string(I));
    EXPECT_EQ(Parent.spans()[I].Parent, Trace::NoParent);
    EXPECT_FALSE(Parent.spans()[I].Open);
  }
  EXPECT_EQ(Parent.counters().get("ticks"), 8u);
}

/// Rebuilds \p V without object members whose key ends in "_us" — every
/// timing field in the report schema (time_*_us counters, span
/// start_us/duration_us) follows that convention.
JsonValue stripTimings(const JsonValue &V) {
  if (V.isObject()) {
    JsonValue Out = JsonValue::object();
    for (const auto &[Key, Member] : V.members())
      if (Key.size() < 3 || Key.compare(Key.size() - 3, 3, "_us") != 0)
        Out.set(Key, stripTimings(Member));
    return Out;
  }
  if (V.isArray()) {
    JsonValue Out = JsonValue::array();
    for (size_t I = 0; I < V.size(); ++I)
      Out.push(stripTimings(V.at(I)));
    return Out;
  }
  return V;
}

/// One traced whole-suite study at \p Jobs workers, rendered as the
/// timing-stripped "ipcp-suite-report-v1" document.
std::string suiteReportAt(unsigned Jobs) {
  Trace T;
  Trace *Prev = Trace::setActive(&T);
  SuiteRunner Runner(Jobs);
  SuiteStudyResult Study = runSuiteStudy(Runner, /*BuildReports=*/true);
  Trace::setActive(Prev);
  EXPECT_EQ(Study.Failures, 0);
  return stripTimings(buildSuiteReport(Study, &T)).dump(2);
}

TEST(SuiteDeterminism, ReportByteIdenticalAcrossJobCounts) {
  std::string Sequential = suiteReportAt(1);
  std::string Parallel = suiteReportAt(4);
  EXPECT_EQ(Sequential, Parallel);
}

} // namespace
