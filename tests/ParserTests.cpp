//===- tests/ParserTests.cpp - MiniFort parser tests ----------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "frontend/AstPrinter.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Parses a single-procedure program and returns its body statements.
const BlockStmt *mainBody(const Program &Prog) {
  const ProcDecl *Main = Prog.findProc("main");
  EXPECT_NE(Main, nullptr);
  return Main->Body.get();
}

TEST(Parser, EmptyMain) {
  Program Prog = parseOk("proc main() { }");
  EXPECT_EQ(Prog.Procs.size(), 1u);
  EXPECT_TRUE(mainBody(Prog)->getStmts().empty());
}

TEST(Parser, GlobalDeclarations) {
  Program Prog = parseOk("global a, b; global m[10];\nproc main() { }");
  ASSERT_EQ(Prog.Globals.size(), 2u);
  EXPECT_EQ(Prog.Globals[0].Items.size(), 2u);
  EXPECT_EQ(Prog.Globals[0].Items[0].Name, "a");
  EXPECT_FALSE(Prog.Globals[0].Items[0].isArray());
  EXPECT_EQ(Prog.Globals[1].Items[0].ArraySize, 10);
}

TEST(Parser, Parameters) {
  Program Prog = parseOk("proc f(x, y, z) { }\nproc main() { }");
  const ProcDecl *F = Prog.findProc("f");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(F->Params.size(), 3u);
  EXPECT_EQ(F->Params[1].Name, "y");
}

TEST(Parser, PrecedenceMulOverAdd) {
  Program Prog = parseOk("proc main() { var x; x = 1 + 2 * 3; }");
  const auto *Assign =
      cast<AssignStmt>(mainBody(Prog)->getStmts()[1].get());
  EXPECT_EQ(printExpr(Assign->getValue()), "(1 + (2 * 3))");
}

TEST(Parser, PrecedenceComparisonLowest) {
  Program Prog = parseOk("proc main() { var x; x = 1 + 2 < 3 * 4; }");
  const auto *Assign =
      cast<AssignStmt>(mainBody(Prog)->getStmts()[1].get());
  EXPECT_EQ(printExpr(Assign->getValue()), "((1 + 2) < (3 * 4))");
}

TEST(Parser, LeftAssociativity) {
  Program Prog = parseOk("proc main() { var x; x = 10 - 3 - 2; }");
  const auto *Assign =
      cast<AssignStmt>(mainBody(Prog)->getStmts()[1].get());
  EXPECT_EQ(printExpr(Assign->getValue()), "((10 - 3) - 2)");
}

TEST(Parser, NegativeLiteralFoldsIntoConstant) {
  Program Prog = parseOk("proc main() { var x; x = -5; }");
  const auto *Assign =
      cast<AssignStmt>(mainBody(Prog)->getStmts()[1].get());
  const auto *Lit = dyn_cast<IntLiteralExpr>(Assign->getValue());
  ASSERT_NE(Lit, nullptr) << "-5 should be a single literal";
  EXPECT_EQ(Lit->getValue(), -5);
}

TEST(Parser, UnaryOnExpressionStaysUnary) {
  Program Prog = parseOk("proc main() { var x; x = -(x + 1); x = !x; }");
  const auto *Neg =
      cast<AssignStmt>(mainBody(Prog)->getStmts()[1].get());
  EXPECT_TRUE(isa<UnaryExpr>(Neg->getValue()));
  const auto *Not =
      cast<AssignStmt>(mainBody(Prog)->getStmts()[2].get());
  EXPECT_EQ(cast<UnaryExpr>(Not->getValue())->getOp(), UnaryOp::Not);
}

TEST(Parser, IfElseChain) {
  Program Prog = parseOk(
      "proc main() { var x; if (x < 1) { x = 1; } else if (x < 2) { x = 2; } "
      "else { x = 3; } }");
  const auto *If = cast<IfStmt>(mainBody(Prog)->getStmts()[1].get());
  ASSERT_NE(If->getElse(), nullptr);
  EXPECT_TRUE(isa<IfStmt>(If->getElse()));
}

TEST(Parser, WhileLoop) {
  Program Prog = parseOk("proc main() { var x; while (x < 10) { x = x + 1; } }");
  const auto *While = cast<WhileStmt>(mainBody(Prog)->getStmts()[1].get());
  EXPECT_TRUE(isa<BinaryExpr>(While->getCond()));
}

TEST(Parser, DoLoopWithAndWithoutStep) {
  Program Prog = parseOk(
      "proc main() { var i; do i = 1, 10 { } do i = 10, 1, -2 { } }");
  const auto *Do1 = cast<DoLoopStmt>(mainBody(Prog)->getStmts()[1].get());
  EXPECT_EQ(Do1->getIndVar(), "i");
  EXPECT_EQ(Do1->getStep(), nullptr);
  const auto *Do2 = cast<DoLoopStmt>(mainBody(Prog)->getStmts()[2].get());
  ASSERT_NE(Do2->getStep(), nullptr);
  EXPECT_EQ(cast<IntLiteralExpr>(Do2->getStep())->getValue(), -2);
}

TEST(Parser, CallStatement) {
  Program Prog = parseOk(
      "proc f(a, b) { }\nproc main() { var x; call f(3, x + 1); }");
  const auto *Call = cast<CallStmt>(mainBody(Prog)->getStmts()[1].get());
  EXPECT_EQ(Call->getCallee(), "f");
  ASSERT_EQ(Call->getArgs().size(), 2u);
  EXPECT_TRUE(isa<IntLiteralExpr>(Call->getArgs()[0].get()));
  EXPECT_TRUE(isa<BinaryExpr>(Call->getArgs()[1].get()));
}

TEST(Parser, ArrayAccess) {
  Program Prog = parseOk(
      "proc main() { var a[5], i; a[i + 1] = a[0] * 2; read a[2]; }");
  const auto *Assign =
      cast<AssignStmt>(mainBody(Prog)->getStmts()[1].get());
  EXPECT_TRUE(isa<ArrayRefExpr>(Assign->getTarget()));
  const auto *Read = cast<ReadStmt>(mainBody(Prog)->getStmts()[2].get());
  EXPECT_TRUE(isa<ArrayRefExpr>(Read->getTarget()));
}

TEST(Parser, PrintReadReturn) {
  Program Prog = parseOk(
      "proc main() { var x; read x; print x * 2; return; }");
  const auto &Stmts = mainBody(Prog)->getStmts();
  EXPECT_TRUE(isa<ReadStmt>(Stmts[1].get()));
  EXPECT_TRUE(isa<PrintStmt>(Stmts[2].get()));
  EXPECT_TRUE(isa<ReturnStmt>(Stmts[3].get()));
}

TEST(Parser, NestedBlocks) {
  Program Prog = parseOk("proc main() { { { print 1; } } }");
  const auto *Outer = cast<BlockStmt>(mainBody(Prog)->getStmts()[0].get());
  EXPECT_TRUE(isa<BlockStmt>(Outer->getStmts()[0].get()));
}

//===----------------------------------------------------------------------===//
// Error reporting and recovery
//===----------------------------------------------------------------------===//

TEST(ParserErrors, MissingSemicolon) {
  std::string Errs = parseErrors("proc main() { var x; x = 1 }");
  EXPECT_NE(Errs.find("expected ';'"), std::string::npos);
}

TEST(ParserErrors, MissingRParen) {
  std::string Errs = parseErrors("proc main() { if (1 { } }");
  EXPECT_NE(Errs.find("expected ')'"), std::string::npos);
}

TEST(ParserErrors, TopLevelGarbage) {
  std::string Errs = parseErrors("42 proc main() { }");
  EXPECT_NE(Errs.find("expected 'global' or 'proc'"), std::string::npos);
}

TEST(ParserErrors, RecoversToReportMultipleErrors) {
  DiagnosticsEngine Diags;
  Parser P("proc main() { x = ; y = ; }", Diags);
  P.parseProgram();
  EXPECT_GE(Diags.errorCount(), 2u) << Diags.str();
}

TEST(ParserErrors, BadArrayExtent) {
  EXPECT_NE(parseErrors("proc main() { var a[0]; }").find("positive"),
            std::string::npos);
  EXPECT_NE(parseErrors("global g[x];\nproc main() { }")
                .find("expected integer literal"),
            std::string::npos);
}

TEST(ParserErrors, ArrayParameterRejected) {
  std::string Errs = parseErrors("proc f(a[5]) { }\nproc main() { }");
  EXPECT_NE(Errs.find("not allowed"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Printer round-trip: printing then re-parsing is a fixpoint.
//===----------------------------------------------------------------------===//

class PrinterRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(PrinterRoundTrip, PrintParsePrintIsStable) {
  Program First = parseOk(GetParam());
  std::string Printed = printProgram(First);
  Program Second = parseOk(Printed);
  EXPECT_EQ(Printed, printProgram(Second));
}

INSTANTIATE_TEST_SUITE_P(
    Snippets, PrinterRoundTrip,
    ::testing::Values(
        "proc main() { var x; x = 1 + 2 * 3; print x; }",
        "global g, h[4];\nproc main() { var i; do i = 1, 3 { g = g + i; } }",
        "proc f(a) { if (a > 0) { a = a - 1; } else { a = 0; } }\n"
        "proc main() { call f(5); }",
        "proc main() { var a[3], i; while (i < 3) { a[i] = -i; i = i + 1; } "
        "read a[0]; return; }",
        "proc main() { var i, s; do i = 10, 0, -2 { s = s + i; } print s; }"));

} // namespace
