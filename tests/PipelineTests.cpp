//===- tests/PipelineTests.cpp - end-to-end driver tests ------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/DeadCode.h"
#include "core/Pipeline.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// The ocean-like pattern used throughout: an init routine, a guarded
/// clobber, and phases reading the constants.
const char *OceanLike = R"(
global nx, dt, steps, debug, depth;
proc init() {
  nx = 20; dt = 4; steps = 3; debug = 0; depth = 100;
}
proc noisy() {
  var v;
  read v;
  depth = v;
}
proc phase(k) {
  if (debug != 0) { call noisy(); }
  print depth + k * dt;
}
proc main() {
  var t;
  call init();
  do t = 1, steps { call phase(t); }
  print depth;
}
)";

TEST(Pipeline, CountsConstantReferences) {
  auto M = lowerOk("proc f(a) { print a + a; }\n"
                   "proc main() { call f(21); }");
  IPCPResult R = runIPCP(*M);
  EXPECT_EQ(R.findProc("f")->ConstantRefs, 2u) << "both refs of a";
  EXPECT_EQ(R.TotalConstantRefs, 2u);
  EXPECT_EQ(R.TotalEntryConstants, 1u);
}

TEST(Pipeline, CountsIncludeIntraproceduralCascades) {
  // The metric counts every variable reference proven constant once the
  // entry constants are substituted and local propagation reruns.
  auto M = lowerOk("proc f(a) { var b; b = a * 2; print b + 1; }\n"
                   "proc main() { call f(10); }");
  IPCPResult R = runIPCP(*M);
  EXPECT_EQ(R.findProc("f")->ConstantRefs, 2u) << "the a ref and the b ref";
}

TEST(Pipeline, RefsInDeadBranchesAreNotCounted) {
  auto M = lowerOk("proc f(flag, x) { if (flag) { print x; } }\n"
                   "proc main() { call f(0, 5); }");
  IPCPResult R = runIPCP(*M);
  // flag's own ref in the condition counts; x's ref inside the dead
  // branch does not.
  EXPECT_EQ(R.findProc("f")->ConstantRefs, 1u);
}

TEST(Pipeline, FactsApplyToTheOriginalModule) {
  auto M = lowerOk("proc f(a) { print a; }\n"
                   "proc main() { call f(3); }");
  IPCPResult R = runIPCP(*M);
  ASSERT_EQ(R.Facts.ConstantLoads.size(), 1u);
  TransformStats Stats = applyFacts(*M, R.Facts);
  EXPECT_EQ(Stats.LoadsReplaced, 1u);
  expectVerifies(*M, VerifyMode::PreSSA);
  // After substitution, no scalar load of the formal remains in f.
  EXPECT_EQ(countInsts<LoadInst>(*getProc(*M, "f")), 0u);
}

TEST(Pipeline, ModuleIsNotMutatedByAnalysis) {
  auto M = lowerOk("proc f(a) { print a; }\nproc main() { call f(3); }");
  unsigned Before = M->instructionCount();
  runIPCP(*M);
  EXPECT_EQ(M->instructionCount(), Before);
}

TEST(Pipeline, OceanPatternNeedsReturnJumpFunctions) {
  auto M = lowerOk(OceanLike);
  IPCPResult With = runIPCP(*M);
  IPCPOptions NoRet;
  NoRet.UseReturnJumpFunctions = false;
  IPCPResult Without = runIPCP(*M, NoRet);
  EXPECT_GT(With.TotalConstantRefs, 3 * Without.TotalConstantRefs)
      << "the init-routine constants dominate (paper: ocean tripled)";
}

TEST(Pipeline, CompletePropagationExposesGuardedConstants) {
  auto M = lowerOk(OceanLike);
  IPCPResult Single = runIPCP(*M);
  CompletePropagationResult Complete = runCompletePropagation(*M);
  EXPECT_EQ(Complete.Rounds, 2u) << "one dead-code round, as in the paper";
  EXPECT_GT(Complete.TotalConstantRefs, Single.TotalConstantRefs)
      << "depth becomes provably constant once noisy() is removed";
  EXPECT_GT(Complete.BlocksRemoved, 0u);
}

TEST(Pipeline, CompletePropagationIsIdempotentWithoutDeadCode) {
  auto M = lowerOk("proc f(a) { print a; }\nproc main() { call f(3); }");
  IPCPResult Single = runIPCP(*M);
  CompletePropagationResult Complete = runCompletePropagation(*M);
  EXPECT_EQ(Complete.Rounds, 1u);
  EXPECT_EQ(Complete.TotalConstantRefs, Single.TotalConstantRefs);
  EXPECT_EQ(Complete.BlocksRemoved, 0u);
}

TEST(Pipeline, CompletePropagationDoesNotMutateInput) {
  auto M = lowerOk(OceanLike);
  unsigned Before = M->instructionCount();
  runCompletePropagation(*M);
  EXPECT_EQ(M->instructionCount(), Before);
}

TEST(Pipeline, IntraproceduralBaseline) {
  auto M = lowerOk("proc f(a) { var k; k = 6; print k + a; }\n"
                   "proc main() { call f(1); }");
  IPCPOptions Intra;
  Intra.IntraproceduralOnly = true;
  IPCPResult R = runIPCP(*M, Intra);
  EXPECT_EQ(R.TotalEntryConstants, 0u) << "no interprocedural information";
  EXPECT_EQ(R.findProc("f")->ConstantRefs, 1u) << "only the local k";
  IPCPResult Full = runIPCP(*M);
  EXPECT_EQ(Full.findProc("f")->ConstantRefs, 2u);
}

TEST(Pipeline, StatsExposePhaseTimings) {
  auto M = lowerOk(OceanLike);
  IPCPResult R = runIPCP(*M);
  EXPECT_GT(R.Stats.get("constants_found"), 0u);
  EXPECT_EQ(R.Stats.get("constant_refs"), R.TotalConstantRefs);
  EXPECT_GT(R.Stats.get("rjf_entries"), 0u);
  EXPECT_GT(R.Stats.get("jf_constant") + R.Stats.get("jf_passthrough") +
                R.Stats.get("jf_polynomial"),
            0u);
  // Timings exist (values are machine dependent).
  EXPECT_GE(R.Stats.get("time_total_us"), R.Stats.get("time_propagation_us"));
}

TEST(Pipeline, NoModOptionUsesWorstCase) {
  // The calls sit in a loop so the phi at the header defeats the
  // identity-return-jump-function recovery; without MOD information the
  // body's view of g is destroyed, exactly the Table 3 column 1 effect.
  auto M = lowerOk("global g;\n"
                   "proc pure(a) { print a + g; }\n"
                   "proc main() { var t; g = 8; do t = 1, 3 { "
                   "call pure(1); } }");
  IPCPResult With = runIPCP(*M);
  IPCPOptions NoMod;
  NoMod.UseModInformation = false;
  IPCPResult Without = runIPCP(*M, NoMod);
  EXPECT_GT(With.TotalConstantRefs, Without.TotalConstantRefs)
      << "without MOD the second call site loses g";
}

TEST(Pipeline, CustomEntryProcedure) {
  auto M = lowerOk("global g;\nproc start() { print g; }\n"
                   "proc main() { print 1; }");
  IPCPOptions Opts;
  Opts.EntryProcedure = "start";
  IPCPResult R = runIPCP(*M, Opts);
  const ProcedureResult *Start = R.findProc("start");
  ASSERT_EQ(Start->EntryConstants.size(), 1u);
  EXPECT_EQ(Start->EntryConstants[0].first, "g");
  EXPECT_EQ(Start->EntryConstants[0].second, 0);
}

TEST(Pipeline, EmptyProgramIsFine) {
  auto M = lowerOk("proc main() { }");
  IPCPResult R = runIPCP(*M);
  EXPECT_EQ(R.TotalConstantRefs, 0u);
  CompletePropagationResult C = runCompletePropagation(*M);
  EXPECT_EQ(C.Rounds, 1u);
}

} // namespace
