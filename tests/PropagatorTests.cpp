//===- tests/PropagatorTests.cpp - interprocedural propagation tests ------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Pipeline.h"
#include "core/Propagator.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Runs the full pipeline and returns CONSTANTS(proc) as a name->value
/// map for easy assertions.
std::map<std::string, ConstantValue>
constantsOf(const IPCPResult &R, const std::string &Proc) {
  std::map<std::string, ConstantValue> Out;
  const ProcedureResult *PR = R.findProc(Proc);
  EXPECT_NE(PR, nullptr);
  if (PR)
    for (const auto &[Name, Value] : PR->EntryConstants)
      Out[Name] = Value;
  return Out;
}

IPCPResult analyze(const std::string &Source, IPCPOptions Opts = {}) {
  auto M = lowerOk(Source);
  return runIPCP(*M, Opts);
}

TEST(Propagator, SingleEdgeLiteral) {
  IPCPResult R = analyze("proc f(a) { print a; }\n"
                         "proc main() { call f(7); }");
  auto C = constantsOf(R, "f");
  ASSERT_TRUE(C.count("a"));
  EXPECT_EQ(C["a"], 7);
}

TEST(Propagator, MultiHopPassThroughChain) {
  IPCPResult R = analyze("proc c(z) { print z; }\n"
                         "proc b(y) { call c(y); }\n"
                         "proc a(x) { call b(x); }\n"
                         "proc main() { call a(9); }");
  EXPECT_EQ(constantsOf(R, "a")["x"], 9);
  EXPECT_EQ(constantsOf(R, "b")["y"], 9);
  EXPECT_EQ(constantsOf(R, "c")["z"], 9)
      << "constants propagate along paths of length > 1";
}

TEST(Propagator, MultiHopStopsForWeakJumpFunctions) {
  IPCPOptions Opts;
  Opts.ForwardKind = JumpFunctionKind::IntraproceduralConstant;
  IPCPResult R = analyze("proc c(z) { print z; }\n"
                         "proc b(y) { call c(y); }\n"
                         "proc main() { call b(9); }",
                         Opts);
  EXPECT_EQ(constantsOf(R, "b")["y"], 9);
  EXPECT_FALSE(constantsOf(R, "c").count("z"))
      << "single-edge classes cannot cross procedure bodies";
}

TEST(Propagator, ConflictingCallSitesMeetToBottom) {
  IPCPResult R = analyze("proc f(a, b) { print a + b; }\n"
                         "proc main() { call f(1, 5); call f(2, 5); }");
  auto C = constantsOf(R, "f");
  EXPECT_FALSE(C.count("a")) << "1 /\\ 2 = bottom";
  EXPECT_EQ(C["b"], 5) << "agreeing sites stay constant";
}

TEST(Propagator, PolynomialAcrossEdges) {
  IPCPResult R = analyze("proc g(m) { print m; }\n"
                         "proc f(n) { call g(n * n + 1); }\n"
                         "proc main() { call f(4); }");
  EXPECT_EQ(constantsOf(R, "g")["m"], 17);
}

TEST(Propagator, GlobalsArePropagatedAsExtendedFormals) {
  IPCPResult R = analyze("global g;\n"
                         "proc use() { print g; }\n"
                         "proc main() { g = 13; call use(); }");
  EXPECT_EQ(constantsOf(R, "use")["g"], 13);
}

TEST(Propagator, EntryGlobalsAreZero) {
  // MiniFort zero-initializes globals; the virtual entry edge into main
  // reflects that.
  IPCPResult R = analyze("global g;\nproc main() { print g; }");
  EXPECT_EQ(constantsOf(R, "main")["g"], 0);
}

TEST(Propagator, GlobalClobberedByCalleeIsNotConstantDownstream) {
  IPCPResult R = analyze("global g;\n"
                         "proc clobber() { read g; }\n"
                         "proc use() { print g; }\n"
                         "proc main() { g = 5; call clobber(); call use(); }");
  EXPECT_FALSE(constantsOf(R, "use").count("g"));
}

TEST(Propagator, SelfRecursionPreservesInvariantArgument) {
  IPCPResult R = analyze(
      "proc f(n, k) { if (n > 0) { call f(n - 1, k) ; } print k; }\n"
      "proc main() { call f(3, 42); }");
  auto C = constantsOf(R, "f");
  EXPECT_FALSE(C.count("n")) << "3 meets 2, 1, 0 from the recursive edge";
  EXPECT_EQ(C["k"], 42) << "k is invariant around the cycle";
}

TEST(Propagator, MutualRecursionConverges) {
  IPCPResult R = analyze(
      "proc even(n, k) { if (n > 0) { call odd(n - 1, k); } print k; }\n"
      "proc odd(n, k) { if (n > 0) { call even(n - 1, k); } }\n"
      "proc main() { call even(8, 5); }");
  EXPECT_EQ(constantsOf(R, "even")["k"], 5);
  EXPECT_EQ(constantsOf(R, "odd")["k"], 5);
}

TEST(Propagator, NeverCalledProcedureKeepsTop) {
  IPCPResult R = analyze("proc dead(x) { print x; }\n"
                         "proc main() { print 1; }",
                         {});
  // x retains top: it is reported as no constant (CONSTANTS excludes
  // top), and nothing is substituted inside dead.
  EXPECT_TRUE(constantsOf(R, "dead").empty());
  EXPECT_EQ(R.findProc("dead")->ConstantRefs, 0u);
}

TEST(Propagator, CallsInUnreachableProceduresStillLowerCallees) {
  // The meet ranges over every edge of G, including edges out of
  // procedures that are never invoked (paper semantics; this is exactly
  // the conservatism dead code elimination removes in Table 3).
  IPCPResult R = analyze("proc f(a) { print a; }\n"
                         "proc dead() { call f(1); }\n"
                         "proc main() { call f(2); }");
  auto C = constantsOf(R, "f");
  EXPECT_FALSE(C.count("a")) << "the dead call's literal 1 meets main's 2";
}

TEST(Propagator, SupportCarryingJFsFromUnreachableCallersStayTop) {
  IPCPResult R = analyze("proc f(a) { print a; }\n"
                         "proc dead(x) { call f(x); }\n"
                         "proc main() { call f(2); }");
  // dead's VAL(x) is top, so its pass-through jump function evaluates to
  // top and does not lower f's a.
  EXPECT_EQ(constantsOf(R, "f")["a"], 2);
}

TEST(Propagator, ReturnJumpFunctionsCarryConstantsThroughCalls) {
  IPCPResult R = analyze("global g;\n"
                         "proc init() { g = 50; }\n"
                         "proc use() { print g; }\n"
                         "proc main() { call init(); call use(); }");
  EXPECT_EQ(constantsOf(R, "use")["g"], 50);

  IPCPOptions NoRet;
  NoRet.UseReturnJumpFunctions = false;
  IPCPResult R2 = analyze("global g;\n"
                          "proc init() { g = 50; }\n"
                          "proc use() { print g; }\n"
                          "proc main() { call init(); call use(); }",
                          NoRet);
  EXPECT_FALSE(constantsOf(R2, "use").count("g"));
}

TEST(Propagator, ExpressionActualDoesNotCarryModificationBack) {
  IPCPResult R = analyze("proc setv(o) { o = 9; }\n"
                         "proc use(x) { print x; }\n"
                         "proc main() { var v; v = 3; call setv(v + 0); "
                         "call use(v); }");
  // v + 0 is a hidden temporary: v is still 3 afterwards.
  EXPECT_EQ(constantsOf(R, "use")["x"], 3);
}

TEST(Propagator, WorkCountersAreBoundedByLatticeDepth) {
  auto M = lowerOk("proc c(z) { print z; }\n"
                   "proc b(y) { call c(y); }\n"
                   "proc a(x) { call b(x); }\n"
                   "proc main() { call a(9); call a(9); }");
  IPCPResult R = runIPCP(*M);
  // Each VAL cell lowers at most twice; evaluations stay small.
  EXPECT_GT(R.Stats.get("prop_evaluations"), 0u);
  EXPECT_LE(R.Stats.get("prop_lowerings"),
            2u * 3u /* formals */ + 2u /* slack */);
}

TEST(Propagator, SccAndFifoSchedulesAgree) {
  // Both schedules must reach the same fixpoint on recursive, mutually
  // recursive, and global-heavy shapes.
  for (const char *Source :
       {"proc f(n, k) { if (n > 0) { call f(n - 1, k); } print k; }\n"
        "proc main() { call f(3, 42); }",
        "proc even(n) { if (n > 0) { call odd(n - 1); } print n; }\n"
        "proc odd(n) { if (n > 0) { call even(n - 1); } print n; }\n"
        "proc main() { call even(8); }",
        "global g, h;\n"
        "proc use() { print g + h; }\n"
        "proc main() { g = 5; call use(); }"}) {
    auto M = lowerOk(Source);
    IPCPOptions Fifo;
    Fifo.Schedule = PropagationSchedule::FIFO;
    IPCPResult Scc = runIPCP(*M);
    IPCPResult Naive = runIPCP(*M, Fifo);
    ASSERT_EQ(Scc.Procs.size(), Naive.Procs.size());
    for (unsigned I = 0; I != Scc.Procs.size(); ++I) {
      EXPECT_EQ(Scc.Procs[I].EntryConstants, Naive.Procs[I].EntryConstants);
      EXPECT_EQ(Scc.Procs[I].ConstantRefs, Naive.Procs[I].ConstantRefs);
    }
  }
}

TEST(Propagator, SccScheduleNeverRevisitsAcyclicGraphs) {
  // Module order lists callees first, the worst case for the FIFO
  // schedule; the SCC sweep still visits each procedure exactly once.
  auto M = lowerOk("proc c(z) { print z; }\n"
                   "proc b(y) { call c(y); }\n"
                   "proc a(x) { call b(x); }\n"
                   "proc main() { call a(9); }");
  IPCPResult Scc = runIPCP(*M);
  EXPECT_EQ(Scc.Stats.get("prop_revisits"), 0u);
  EXPECT_EQ(Scc.Stats.get("prop_visits"), 4u);

  IPCPOptions Fifo;
  Fifo.Schedule = PropagationSchedule::FIFO;
  IPCPResult Naive = runIPCP(*M, Fifo);
  EXPECT_GT(Naive.Stats.get("prop_revisits"), 0u);
  EXPECT_LT(Scc.Stats.get("prop_visits"), Naive.Stats.get("prop_visits"));
  EXPECT_LT(Scc.Stats.get("prop_evaluations"),
            Naive.Stats.get("prop_evaluations"));
}

TEST(Propagator, RecursiveComponentsStillIterate) {
  // A cyclic component must keep iterating until its members converge:
  // the conflicting recursive argument has to reach bottom, not stop at
  // the first visit's value.
  IPCPOptions Fifo;
  Fifo.Schedule = PropagationSchedule::FIFO;
  for (IPCPOptions Opts : {IPCPOptions(), Fifo}) {
    IPCPResult R = analyze(
        "proc f(n, k) { if (n > 0) { call f(n - 1, k); } print n + k; }\n"
        "proc main() { call f(3, 42); }",
        Opts);
    auto C = constantsOf(R, "f");
    EXPECT_FALSE(C.count("n")) << "n meets 3, 2, 1, ... -> bottom";
    EXPECT_EQ(C["k"], 42);
  }
}

TEST(ConstantsMap, SetValueSkipsTopStores) {
  auto M = lowerOk("proc f(a) { print a; }\n"
                   "proc main() { call f(1); }");
  Procedure *F = getProc(*M, "f");
  Variable *A = F->formals()[0];

  ConstantsMap CM;
  CM.setValue(F, A, LatticeValue::top());
  EXPECT_EQ(CM.totalEntries(), 0u) << "storing top must not create entries";
  EXPECT_TRUE(CM.valueOf(F, A).isTop());

  CM.setValue(F, A, LatticeValue::constant(5));
  EXPECT_EQ(CM.totalEntries(), 1u);
  EXPECT_EQ(CM.totalConstants(), 1u);

  // A map that never saw the top store is structurally equal.
  ConstantsMap Direct;
  Direct.setValue(F, A, LatticeValue::constant(5));
  EXPECT_TRUE(CM.equals(Direct));
}

TEST(Propagator, DeterministicAcrossRuns) {
  const char *Source = "global g, h;\n"
                       "proc f(a, b) { g = a; call k(b, 3); }\n"
                       "proc k(x, y) { h = x + y; print h; }\n"
                       "proc main() { call f(1, 2); call k(2, 3); }";
  auto M1 = lowerOk(Source);
  auto M2 = lowerOk(Source);
  IPCPResult R1 = runIPCP(*M1);
  IPCPResult R2 = runIPCP(*M2);
  ASSERT_EQ(R1.Procs.size(), R2.Procs.size());
  for (unsigned I = 0; I != R1.Procs.size(); ++I) {
    EXPECT_EQ(R1.Procs[I].Name, R2.Procs[I].Name);
    EXPECT_EQ(R1.Procs[I].EntryConstants, R2.Procs[I].EntryConstants);
    EXPECT_EQ(R1.Procs[I].ConstantRefs, R2.Procs[I].ConstantRefs);
  }
}

} // namespace
