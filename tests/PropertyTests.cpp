//===- tests/PropertyTests.cpp - cross-cutting invariants -----------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Property tests over randomly generated programs, enforcing the paper's
// stated relationships between configurations plus the soundness
// definition itself:
//
//  1. containment (Section 3.1): constants found with literal <= intra
//     <= pass-through <= polynomial jump functions;
//  2. return jump functions only add information;
//  3. MOD information only adds information;
//  4. complete propagation finds at least as much as a single pass;
//  5. soundness: every claimed CONSTANTS pair holds on every dynamic
//     procedure entry (interpreter oracle), in every configuration;
//  6. determinism: repeated analysis produces identical results.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Pipeline.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

struct GeneratedCase {
  std::unique_ptr<Module> M;

  explicit GeneratedCase(uint64_t Seed, bool Recursion = false) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumProcs = 6;
    Config.NumGlobals = 4;
    Config.AllowRecursion = Recursion;
    M = lowerOk(generateProgram(Config));
  }

  unsigned refs(IPCPOptions Opts) { return runIPCP(*M, Opts).TotalConstantRefs; }
};

class GeneratedProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedProperties, JumpFunctionContainment) {
  GeneratedCase Case(GetParam());
  IPCPOptions Opts;
  Opts.ForwardKind = JumpFunctionKind::Literal;
  unsigned Literal = Case.refs(Opts);
  Opts.ForwardKind = JumpFunctionKind::IntraproceduralConstant;
  unsigned Intra = Case.refs(Opts);
  Opts.ForwardKind = JumpFunctionKind::PassThrough;
  unsigned Pass = Case.refs(Opts);
  Opts.ForwardKind = JumpFunctionKind::Polynomial;
  unsigned Poly = Case.refs(Opts);
  EXPECT_LE(Literal, Intra);
  EXPECT_LE(Intra, Pass);
  EXPECT_LE(Pass, Poly);
}

TEST_P(GeneratedProperties, ReturnJumpFunctionsOnlyAdd) {
  GeneratedCase Case(GetParam());
  IPCPOptions With;
  IPCPOptions Without;
  Without.UseReturnJumpFunctions = false;
  EXPECT_GE(Case.refs(With), Case.refs(Without));
}

TEST_P(GeneratedProperties, ModInformationOnlyAdds) {
  GeneratedCase Case(GetParam());
  IPCPOptions With;
  IPCPOptions Without;
  Without.UseModInformation = false;
  EXPECT_GE(Case.refs(With), Case.refs(Without));
}

TEST_P(GeneratedProperties, CompleteAtLeastSinglePass) {
  GeneratedCase Case(GetParam());
  unsigned Single = Case.refs(IPCPOptions());
  CompletePropagationResult Complete = runCompletePropagation(*Case.M);
  EXPECT_GE(Complete.TotalConstantRefs, Single);
}

TEST_P(GeneratedProperties, InterproceduralBeatsIntraprocedural) {
  GeneratedCase Case(GetParam());
  IPCPOptions Intra;
  Intra.IntraproceduralOnly = true;
  EXPECT_GE(Case.refs(IPCPOptions()), Case.refs(Intra));
}

TEST_P(GeneratedProperties, SoundInEveryConfiguration) {
  GeneratedCase Case(GetParam());
  ExecutionOptions Exec;
  Exec.MaxSteps = 2'000'000;
  Exec.InputSeed = GetParam();

  std::vector<IPCPOptions> Configs;
  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraproceduralConstant,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial})
    for (bool Ret : {false, true})
      for (bool Mod : {false, true}) {
        IPCPOptions Opts;
        Opts.ForwardKind = Kind;
        Opts.UseReturnJumpFunctions = Ret;
        Opts.UseModInformation = Mod;
        Configs.push_back(Opts);
      }

  for (const IPCPOptions &Opts : Configs) {
    IPCPResult R = runIPCP(*Case.M, Opts);
    OracleReport Report = checkSoundness(*Case.M, R, Exec);
    EXPECT_TRUE(Report.Sound)
        << "seed " << GetParam() << " kind "
        << jumpFunctionKindName(Opts.ForwardKind) << " ret "
        << Opts.UseReturnJumpFunctions << " mod " << Opts.UseModInformation
        << ": " << Report.str();
  }
}

TEST_P(GeneratedProperties, DeterministicAnalysis) {
  GeneratedCase Case(GetParam());
  IPCPResult R1 = runIPCP(*Case.M);
  IPCPResult R2 = runIPCP(*Case.M);
  ASSERT_EQ(R1.Procs.size(), R2.Procs.size());
  for (unsigned I = 0; I != R1.Procs.size(); ++I) {
    EXPECT_EQ(R1.Procs[I].EntryConstants, R2.Procs[I].EntryConstants);
    EXPECT_EQ(R1.Procs[I].ConstantRefs, R2.Procs[I].ConstantRefs);
  }
  EXPECT_EQ(R1.Facts.ConstantLoads, R2.Facts.ConstantLoads);
}

TEST_P(GeneratedProperties, SSAFormVerifies) {
  GeneratedCase Case(GetParam());
  auto Clone = Case.M->clone();
  CallGraph CG(*Clone);
  ModRefInfo MRI = ModRefInfo::compute(*Clone, CG);
  for (const std::unique_ptr<Procedure> &P : Clone->procedures())
    constructSSA(*P, MRI);
  expectVerifies(*Clone, VerifyMode::SSA);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedProperties,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// The same soundness sweep over recursive programs.
//===----------------------------------------------------------------------===//

class RecursiveProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecursiveProperties, SoundWithRecursion) {
  GeneratedCase Case(GetParam(), /*Recursion=*/true);
  ExecutionOptions Exec;
  Exec.MaxSteps = 2'000'000;
  IPCPResult R = runIPCP(*Case.M);
  OracleReport Report = checkSoundness(*Case.M, R, Exec);
  EXPECT_TRUE(Report.Sound) << Report.str();
}

TEST_P(RecursiveProperties, ContainmentWithRecursion) {
  GeneratedCase Case(GetParam(), /*Recursion=*/true);
  IPCPOptions Literal;
  Literal.ForwardKind = JumpFunctionKind::Literal;
  IPCPOptions Poly;
  EXPECT_LE(Case.refs(Literal), Case.refs(Poly));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecursiveProperties,
                         ::testing::Range<uint64_t>(100, 113));

//===----------------------------------------------------------------------===//
// Complete propagation also stays sound (the transformed program keeps
// the original observable behavior).
//===----------------------------------------------------------------------===//

class TransformProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransformProperties, SubstitutionPreservesOutput) {
  GeneratedCase Case(GetParam());
  ExecutionOptions Exec;
  Exec.MaxSteps = 2'000'000;
  Exec.InputSeed = 99;
  ExecutionResult Before = interpret(*Case.M, Exec);

  IPCPResult R = runIPCP(*Case.M);
  applyFacts(*Case.M, R.Facts);
  expectVerifies(*Case.M, VerifyMode::PreSSA);
  ExecutionResult After = interpret(*Case.M, Exec);

  if (Before.ok()) {
    EXPECT_EQ(After.TheStatus, Before.TheStatus);
    EXPECT_EQ(Before.Output, After.Output)
        << "substituting proven constants must not change behavior";
  } else {
    // A trapping run may produce fewer outputs after DCE removes the
    // trapping dead computation; the prefix must still agree.
    size_t Common = std::min(Before.Output.size(), After.Output.size());
    for (size_t I = 0; I != Common; ++I)
      EXPECT_EQ(Before.Output[I], After.Output[I]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperties,
                         ::testing::Range<uint64_t>(200, 213));

} // namespace
