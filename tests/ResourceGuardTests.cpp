//===- tests/ResourceGuardTests.cpp - budgets and degradation -------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The resource-governance layer: guard latching semantics, frontend
// budgets (depth/tokens/AST nodes) at their exact boundaries, graceful
// pipeline degradation with sound partial results, checked file I/O, and
// the degraded report schema.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Pipeline.h"
#include "core/Report.h"
#include "support/FileIO.h"
#include "support/Json.h"
#include "support/ResourceGuard.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

//===----------------------------------------------------------------------===//
// Guard unit behavior.
//===----------------------------------------------------------------------===//

TEST(ResourceGuard, DefaultLimitsNeverTrip) {
  ResourceGuard Guard;
  EXPECT_TRUE(Guard.checkTokens(1'000'000'000));
  EXPECT_TRUE(Guard.checkAstNodes(1'000'000'000));
  EXPECT_TRUE(Guard.checkIRInstructions(1'000'000'000));
  EXPECT_TRUE(Guard.noteEvaluations(1'000'000'000));
  EXPECT_TRUE(Guard.checkDeadline("analysis"));
  EXPECT_FALSE(Guard.tripped());
  EXPECT_TRUE(Guard.status().ok());
  EXPECT_FALSE(Guard.status().Degraded);
}

TEST(ResourceGuard, FirstTripWinsAndLatches) {
  ResourceLimits Limits;
  Limits.MaxTokens = 10;
  Limits.MaxAstNodes = 10;
  ResourceGuard Guard(Limits);
  EXPECT_TRUE(Guard.checkTokens(10)); // at the limit: fine
  EXPECT_FALSE(Guard.checkTokens(11));
  EXPECT_TRUE(Guard.tripped());
  // A later excess cannot re-label the trip.
  EXPECT_FALSE(Guard.checkAstNodes(11));
  PipelineStatus Status = Guard.status();
  EXPECT_TRUE(Status.Degraded);
  EXPECT_EQ(Status.TrippedLimit, "tokens");
  EXPECT_EQ(Status.Stage, "frontend");
  EXPECT_NE(Status.Message.find("tokens"), std::string::npos);
  EXPECT_NE(Status.Message.find("frontend"), std::string::npos);
}

TEST(ResourceGuard, EvaluationBudgetTrips) {
  ResourceLimits Limits;
  Limits.MaxPropagationEvals = 5;
  ResourceGuard Guard(Limits);
  for (int I = 0; I != 5; ++I)
    EXPECT_TRUE(Guard.noteEvaluations());
  EXPECT_FALSE(Guard.noteEvaluations());
  EXPECT_TRUE(Guard.tripped());
  EXPECT_FALSE(Guard.deadlineTripped());
  EXPECT_EQ(Guard.status().TrippedLimit, "prop-evals");
  EXPECT_EQ(Guard.status().Stage, "propagation");
}

TEST(ResourceGuard, DeadlineTrips) {
  ResourceLimits Limits;
  Limits.DeadlineMs = 1;
  ResourceGuard Guard(Limits);
  while (Guard.elapsedMs() < 2) {
    // spin: steady_clock moves forward on its own
  }
  EXPECT_FALSE(Guard.checkDeadline("record"));
  EXPECT_TRUE(Guard.tripped());
  EXPECT_TRUE(Guard.deadlineTripped());
  EXPECT_EQ(Guard.status().TrippedLimit, "deadline-ms");
  EXPECT_EQ(Guard.status().Stage, "record");
}

//===----------------------------------------------------------------------===//
// Frontend budgets at their boundaries.
//===----------------------------------------------------------------------===//

/// Parses `proc main() { print (((...1...))); }` with \p Parens nesting
/// levels under a guard whose depth limit is \p Limit.
bool parseAtDepth(unsigned Parens, unsigned Limit,
                  std::string *ErrsOut = nullptr, bool *TrippedOut = nullptr) {
  ResourceLimits Limits;
  Limits.MaxParseDepth = Limit;
  ResourceGuard Guard(Limits);
  DiagnosticsEngine Diags;
  std::string Expr(Parens, '(');
  Expr += "1";
  Expr.append(Parens, ')');
  std::optional<Program> Ast =
      parseAndCheck("proc main() { print " + Expr + "; }", Diags, true, &Guard);
  if (ErrsOut)
    *ErrsOut = Diags.str();
  if (TrippedOut)
    *TrippedOut = Guard.tripped();
  return Ast.has_value();
}

TEST(ParserGuard, ExpressionDepthBoundaryIsExact) {
  // Find the first nesting depth the limit rejects, then check both
  // sides of the boundary: one level less parses cleanly, the boundary
  // and beyond diagnose cleanly (no crash, guard tripped, one error).
  const unsigned Limit = 64;
  unsigned Boundary = 0;
  for (unsigned D = 1; D <= Limit && !Boundary; ++D)
    if (!parseAtDepth(D, Limit))
      Boundary = D;
  ASSERT_GT(Boundary, 2u) << "reasonable nesting must fit the limit";

  EXPECT_TRUE(parseAtDepth(Boundary - 1, Limit));

  std::string Errs;
  bool Tripped = false;
  EXPECT_FALSE(parseAtDepth(Boundary, Limit, &Errs, &Tripped));
  EXPECT_TRUE(Tripped);
  EXPECT_NE(Errs.find("nesting too deep"), std::string::npos) << Errs;

  EXPECT_FALSE(parseAtDepth(Boundary + 1, Limit));

  // Each paren level costs a bounded number of frames, so a slightly
  // higher limit admits the rejected depth.
  EXPECT_TRUE(parseAtDepth(Boundary, Limit + 4));
}

TEST(ParserGuard, BlockDepthBoundaryDiagnosesCleanly) {
  const unsigned Limit = 64;
  auto ParseBlocks = [&](unsigned Depth, std::string *Errs) {
    ResourceLimits Limits;
    Limits.MaxParseDepth = Limit;
    ResourceGuard Guard(Limits);
    DiagnosticsEngine Diags;
    std::string Body = "print 1;";
    for (unsigned I = 0; I != Depth; ++I)
      Body = "{ " + Body + " }";
    std::optional<Program> Ast =
        parseAndCheck("proc main() { " + Body + " }", Diags, true, &Guard);
    if (Errs)
      *Errs = Diags.str();
    return Ast.has_value();
  };
  unsigned Boundary = 0;
  for (unsigned D = 1; D <= Limit && !Boundary; ++D)
    if (!ParseBlocks(D, nullptr))
      Boundary = D;
  ASSERT_GT(Boundary, 2u);
  EXPECT_TRUE(ParseBlocks(Boundary - 1, nullptr));
  std::string Errs;
  EXPECT_FALSE(ParseBlocks(Boundary, &Errs));
  EXPECT_NE(Errs.find("nesting too deep"), std::string::npos) << Errs;
}

TEST(ParserGuard, PathologicalNestingIsTotalWithoutAGuard) {
  // No guard at all: the parser's built-in default depth limit must keep
  // a 100k-deep expression from touching the C++ stack limit.
  DiagnosticsEngine Diags;
  std::string Expr(100'000, '(');
  Expr += "1";
  Expr.append(100'000, ')');
  std::optional<Program> Ast =
      parseAndCheck("proc main() { print " + Expr + "; }", Diags);
  EXPECT_FALSE(Ast.has_value());
  EXPECT_NE(Diags.str().find("nesting too deep"), std::string::npos);
}

TEST(ParserGuard, TokenBudgetTripsWithDiagnostic) {
  ResourceLimits Limits;
  Limits.MaxTokens = 8;
  ResourceGuard Guard(Limits);
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(
      "proc main() { print 1 + 2 + 3 + 4; }", Diags, true, &Guard);
  EXPECT_FALSE(Ast.has_value());
  EXPECT_TRUE(Guard.tripped());
  EXPECT_EQ(Guard.status().TrippedLimit, "tokens");
  EXPECT_NE(Diags.str().find("token budget"), std::string::npos);
}

TEST(ParserGuard, AstNodeBudgetTripsWithDiagnostic) {
  ResourceLimits Limits;
  Limits.MaxAstNodes = 4;
  ResourceGuard Guard(Limits);
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(
      "proc main() { print 1 + 2 + 3 + 4 + 5 + 6; }", Diags, true, &Guard);
  EXPECT_FALSE(Ast.has_value());
  EXPECT_TRUE(Guard.tripped());
  EXPECT_EQ(Guard.status().TrippedLimit, "ast-nodes");
  EXPECT_NE(Diags.str().find("AST node budget"), std::string::npos);
}

TEST(ParserGuard, GenerousBudgetsLeaveParsingUntouched) {
  ResourceLimits Limits;
  Limits.MaxTokens = 1'000'000;
  Limits.MaxAstNodes = 1'000'000;
  ResourceGuard Guard(Limits);
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(
      "proc f(x) { print x; }\nproc main() { call f(1); }", Diags, true,
      &Guard);
  EXPECT_TRUE(Ast.has_value());
  EXPECT_FALSE(Guard.tripped());
  EXPECT_FALSE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Pipeline degradation.
//===----------------------------------------------------------------------===//

const char *FanoutSource =
    "global g;\n"
    "proc leaf(a, b) { print a + b + g; }\n"
    "proc mid(x) { call leaf(x, 2); call leaf(x, 3); }\n"
    "proc main() { g = 5; call mid(1); call mid(1); }";

TEST(PipelineGuard, PropagationBudgetDegradesToSoundEmptyMap) {
  auto M = lowerOk(FanoutSource);
  IPCPOptions Opts;
  Opts.Limits.MaxPropagationEvals = 1;
  IPCPResult R = runIPCP(*M, Opts);
  EXPECT_TRUE(R.Status.Degraded);
  EXPECT_EQ(R.Status.TrippedLimit, "prop-evals");
  EXPECT_EQ(R.Status.Stage, "propagation");
  // The cut-short fixpoint is discarded: no interprocedural constants
  // may be claimed (they would be optimistic, i.e. unsound)...
  EXPECT_EQ(R.TotalEntryConstants, 0u);
  // ...but the record stage still ran over every procedure.
  EXPECT_EQ(R.Procs.size(), 3u);
  EXPECT_EQ(R.Stats.get("guard_limit_trips"), 1u);
  EXPECT_EQ(R.Stats.get("guard_deadline_trips"), 0u);
}

TEST(PipelineGuard, BindingGraphPropagatorDegradesIdentically) {
  auto M = lowerOk(FanoutSource);
  IPCPOptions Opts;
  Opts.UseBindingGraphPropagator = true;
  Opts.Limits.MaxPropagationEvals = 1;
  IPCPResult R = runIPCP(*M, Opts);
  EXPECT_TRUE(R.Status.Degraded);
  EXPECT_EQ(R.Status.TrippedLimit, "prop-evals");
  EXPECT_EQ(R.TotalEntryConstants, 0u);
}

TEST(PipelineGuard, IRBudgetShortCircuitsTheRun) {
  auto M = lowerOk(FanoutSource);
  IPCPOptions Opts;
  Opts.Limits.MaxIRInstructions = 1;
  IPCPResult R = runIPCP(*M, Opts);
  EXPECT_TRUE(R.Status.Degraded);
  EXPECT_EQ(R.Status.TrippedLimit, "ir-insts");
  EXPECT_TRUE(R.Procs.empty());
  EXPECT_EQ(R.Stats.get("guard_limit_trips"), 1u);
}

TEST(PipelineGuard, UntrippedRunReportsCompleted) {
  auto M = lowerOk(FanoutSource);
  IPCPResult R = runIPCP(*M);
  EXPECT_FALSE(R.Status.Degraded);
  EXPECT_TRUE(R.Status.ok());
  EXPECT_EQ(R.Stats.get("guard_limit_trips"), 0u);
  EXPECT_GT(R.TotalEntryConstants, 0u);
}

TEST(PipelineGuard, ExternalGuardAlreadyTrippedYieldsEmptyDegradedResult) {
  auto M = lowerOk(FanoutSource);
  ResourceGuard Guard;
  Guard.trip("tokens", "frontend");
  IPCPResult R = runIPCP(*M, {}, &Guard);
  EXPECT_TRUE(R.Status.Degraded);
  EXPECT_EQ(R.Status.TrippedLimit, "tokens");
  EXPECT_TRUE(R.Procs.empty());
}

TEST(PipelineGuard, CompletePropagationStopsOnTrip) {
  auto M = lowerOk(FanoutSource);
  IPCPOptions Opts;
  Opts.Limits.MaxPropagationEvals = 1;
  CompletePropagationResult CP = runCompletePropagation(*M, Opts);
  EXPECT_TRUE(CP.Status.Degraded);
  EXPECT_EQ(CP.Rounds, 1u);
  EXPECT_TRUE(CP.FinalRound.Status.Degraded);
}

TEST(PipelineGuard, DegradedResultIsSoundSubsetOfFullResult) {
  // Everything a degraded run *does* claim must also hold in the full
  // run: degradation loses precision, never soundness.
  auto M = lowerOk(FanoutSource);
  IPCPOptions Tight;
  Tight.Limits.MaxPropagationEvals = 1;
  IPCPResult Degraded = runIPCP(*M, Tight);
  IPCPResult Full = runIPCP(*M);
  for (const ProcedureResult &PR : Degraded.Procs) {
    const ProcedureResult *FullPR = Full.findProc(PR.Name);
    ASSERT_NE(FullPR, nullptr);
    for (const auto &[Var, Value] : PR.EntryConstants) {
      bool FoundInFull = false;
      for (const auto &[FVar, FValue] : FullPR->EntryConstants)
        if (FVar == Var && FValue == Value)
          FoundInFull = true;
      EXPECT_TRUE(FoundInFull) << PR.Name << "." << Var;
    }
  }
  EXPECT_LE(Degraded.TotalConstantRefs, Full.TotalConstantRefs);
}

//===----------------------------------------------------------------------===//
// Degraded report schema.
//===----------------------------------------------------------------------===//

TEST(DegradedReport, ResultJsonCarriesDegradationObject) {
  auto M = lowerOk(FanoutSource);
  IPCPOptions Opts;
  Opts.Limits.MaxPropagationEvals = 1;
  IPCPResult R = runIPCP(*M, Opts);
  JsonValue Doc = resultToJson(R);
  EXPECT_TRUE(Doc.find("degraded")->asBool());
  const JsonValue *Degradation = Doc.find("degradation");
  ASSERT_NE(Degradation, nullptr);
  EXPECT_EQ(Degradation->find("limit")->asString(), "prop-evals");
  EXPECT_EQ(Degradation->find("stage")->asString(), "propagation");
  EXPECT_FALSE(Degradation->find("message")->asString().empty());
}

TEST(DegradedReport, CleanRunReportsDegradedFalse) {
  auto M = lowerOk(FanoutSource);
  IPCPResult R = runIPCP(*M);
  JsonValue Doc = resultToJson(R);
  EXPECT_FALSE(Doc.find("degraded")->asBool());
  EXPECT_EQ(Doc.find("degradation"), nullptr);
}

TEST(DegradedReport, TopLevelReportFlagsDegradationAndRoundTrips) {
  auto M = lowerOk(FanoutSource);
  IPCPOptions Opts;
  Opts.Limits.MaxPropagationEvals = 1;
  IPCPResult R = runIPCP(*M, Opts);
  AnalysisReport Report;
  Report.SourceName = "fanout";
  Report.M = M.get();
  Report.Opts = &Opts;
  Report.Single = &R;
  JsonValue Doc = buildAnalysisReport(Report);
  EXPECT_EQ(Doc.find("schema")->asString(), "ipcp-report-v1");
  EXPECT_TRUE(Doc.find("degraded")->asBool());
  ASSERT_NE(Doc.find("degradation"), nullptr);

  // The degraded document must still round-trip through the parser.
  std::string Error;
  std::optional<JsonValue> Parsed = JsonValue::parse(Doc.dump(2), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_TRUE(Parsed->find("degraded")->asBool());
  EXPECT_EQ(Parsed->find("degradation")->find("limit")->asString(),
            "prop-evals");
}

TEST(DegradedReport, ExplicitStatusCoversFrontendTrips) {
  // A frontend trip yields no IPCPResult; the explicit status pointer
  // still produces a schema-valid degraded document.
  ResourceGuard Guard;
  Guard.trip("parse-depth", "frontend");
  PipelineStatus Status = Guard.status();
  AnalysisReport Report;
  Report.SourceName = "adversarial";
  Report.Status = &Status;
  JsonValue Doc = buildAnalysisReport(Report);
  EXPECT_TRUE(Doc.find("degraded")->asBool());
  EXPECT_EQ(Doc.find("degradation")->find("limit")->asString(), "parse-depth");
  EXPECT_EQ(Doc.find("degradation")->find("stage")->asString(), "frontend");
}

//===----------------------------------------------------------------------===//
// Checked file I/O.
//===----------------------------------------------------------------------===//

TEST(FileIO, MissingFileIsAnOpenError) {
  std::string Out = "sentinel", Error;
  EXPECT_FALSE(readFileToString("/no/such/ipcp/file.mf", Out, &Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;
}

TEST(FileIO, DirectoryIsAReadError) {
  std::string Out, Error;
  EXPECT_FALSE(readFileToString(::testing::TempDir(), Out, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(FileIO, WriteReadRoundTrip) {
  std::string Path = ::testing::TempDir() + "/ipcp_fileio_roundtrip.txt";
  std::string Payload = "line one\nline two\nno trailing newline", Error;
  ASSERT_TRUE(writeStringToFile(Path, Payload, &Error)) << Error;
  std::string Back;
  ASSERT_TRUE(readFileToString(Path, Back, &Error)) << Error;
  EXPECT_EQ(Back, Payload);
  std::remove(Path.c_str());
}

TEST(FileIO, EmptyFileReadsAsEmptyString) {
  std::string Path = ::testing::TempDir() + "/ipcp_fileio_empty.txt";
  std::string Error;
  ASSERT_TRUE(writeStringToFile(Path, "", &Error)) << Error;
  std::string Back = "sentinel";
  ASSERT_TRUE(readFileToString(Path, Back, &Error)) << Error;
  EXPECT_TRUE(Back.empty());
  std::remove(Path.c_str());
}

TEST(FileIO, UnwritablePathSurfacesOpenError) {
  std::string Error;
  EXPECT_FALSE(
      writeStringToFile("/no/such/dir/ipcp_out.txt", "text", &Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos) << Error;
}

TEST(FileIO, WriteJsonFileReportsFailures) {
  JsonValue Doc = JsonValue::object();
  Doc.set("k", uint64_t(1));
  std::string Error;
  EXPECT_FALSE(writeJsonFile("/no/such/dir/report.json", Doc, &Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
