//===- tests/ReturnJumpFunctionTests.cpp - return JF tests ----------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/ReturnJumpFunctions.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Builds SSA and the return-jump-function table for a program.
struct RJFFixture {
  std::unique_ptr<Module> M;
  std::unique_ptr<CallGraph> CG;
  ModRefInfo MRI = ModRefInfo::worstCase(Module()); // replaced in ctor
  SSAMap SSA;
  SymExprContext Ctx;
  std::unique_ptr<ReturnJumpFunctions> RJFs;

  explicit RJFFixture(const std::string &Source) {
    M = lowerOk(Source);
    CG = std::make_unique<CallGraph>(*M);
    MRI = ModRefInfo::compute(*M, *CG);
    for (const std::unique_ptr<Procedure> &P : M->procedures())
      SSA.emplace(P.get(), constructSSA(*P, MRI));
    RJFs = std::make_unique<ReturnJumpFunctions>(
        ReturnJumpFunctions::build(*CG, MRI, SSA, Ctx));
  }

  const JumpFunction *find(const std::string &Proc,
                           const std::string &Var) {
    Procedure *P = getProc(*M, Proc);
    Variable *V = P->findVariable(Var);
    if (!V)
      V = M->findGlobal(Var);
    EXPECT_NE(V, nullptr);
    return RJFs->find(P, V);
  }
};

TEST(ReturnJF, ConstantOutParameter) {
  RJFFixture F("proc setsize(n) { n = 32; }\n"
               "proc main() { var x; call setsize(x); print x; }");
  const JumpFunction *JF = F.find("setsize", "n");
  ASSERT_NE(JF, nullptr);
  ASSERT_TRUE(JF->isConstant());
  EXPECT_EQ(JF->expr()->getConst(), 32);
}

TEST(ReturnJF, UnmodifiedFormalHasNoEntry) {
  RJFFixture F("proc f(a, b) { a = 1; print b; }\n"
               "proc main() { var x, y; call f(x, y); }");
  EXPECT_NE(F.find("f", "a"), nullptr);
  EXPECT_EQ(F.find("f", "b"), nullptr)
      << "MOD says b is untouched: no return jump function needed";
}

TEST(ReturnJF, PolynomialOfEntryValues) {
  RJFFixture F("proc inc(a, b) { a = b * 2 + 1; }\n"
               "proc main() { var x; call inc(x, 5); print x; }");
  const JumpFunction *JF = F.find("inc", "a");
  ASSERT_NE(JF, nullptr);
  ASSERT_FALSE(JF->isBottom());
  EXPECT_EQ(JF->str(), "((b * 2) + 1)");
  ASSERT_EQ(JF->support().size(), 1u);
  EXPECT_EQ(JF->support()[0]->getName(), "b");
}

TEST(ReturnJF, GlobalAssignment) {
  RJFFixture F("global g;\n"
               "proc init() { g = 99; }\n"
               "proc main() { call init(); print g; }");
  const JumpFunction *JF = F.find("init", "g");
  ASSERT_NE(JF, nullptr);
  ASSERT_TRUE(JF->isConstant());
  EXPECT_EQ(JF->expr()->getConst(), 99);
}

TEST(ReturnJF, ConditionalModificationIsBottom) {
  RJFFixture F("proc f(a, c) { if (c) { a = 1; } }\n"
               "proc main() { var x, y; call f(x, y); }");
  const JumpFunction *JF = F.find("f", "a");
  ASSERT_NE(JF, nullptr);
  EXPECT_TRUE(JF->isBottom())
      << "a is entry(a) or 1 depending on the branch";
}

TEST(ReturnJF, AgreeingBranchesStayConstant) {
  RJFFixture F("proc f(a, c) { if (c) { a = 4; } else { a = 4; } }\n"
               "proc main() { var x, y; call f(x, y); }");
  const JumpFunction *JF = F.find("f", "a");
  ASSERT_NE(JF, nullptr);
  ASSERT_TRUE(JF->isConstant());
  EXPECT_EQ(JF->expr()->getConst(), 4);
}

TEST(ReturnJF, ComposesThroughInnerCalls) {
  // outer's result flows through inner's return jump function: the first
  // evaluation of a return jump function, during return-jump-function
  // generation of the caller (paper Section 3.2).
  RJFFixture F("proc inner(x) { x = 7; }\n"
               "proc outer(y) { call inner(y); y = y + 1; }\n"
               "proc main() { var v; call outer(v); print v; }");
  const JumpFunction *JF = F.find("outer", "y");
  ASSERT_NE(JF, nullptr);
  ASSERT_TRUE(JF->isConstant());
  EXPECT_EQ(JF->expr()->getConst(), 8);
}

TEST(ReturnJF, SymbolicCompositionOverCallerFormals) {
  // inner doubles; outer passes its own formal: outer's return jump
  // function is symbolic over outer's entry values.
  RJFFixture F("proc dbl(x, s) { x = s * 2; }\n"
               "proc outer(y, t) { call dbl(y, t); }\n"
               "proc main() { var v; call outer(v, 3); print v; }");
  const JumpFunction *JF = F.find("outer", "y");
  ASSERT_NE(JF, nullptr);
  ASSERT_FALSE(JF->isBottom());
  EXPECT_EQ(JF->str(), "(t * 2)");
}

TEST(ReturnJF, RecursionIsConservative) {
  // The recursive call passes n by reference, so n's exit value flows
  // through the not-yet-built recursive return jump function: bottom.
  RJFFixture F("proc f(n) { n = n - 1; if (n > 0) { call f(n); } }\n"
               "proc main() { var x; x = 3; call f(x); }");
  const JumpFunction *JF = F.find("f", "n");
  ASSERT_NE(JF, nullptr);
  EXPECT_TRUE(JF->isBottom())
      << "single bottom-up pass sees bottom for the recursive callee";
}

TEST(ReturnJF, RecursionThroughTemporaryStaysPrecise) {
  // Here the recursive call's actual is an expression (hidden
  // temporary), so it cannot modify n; the exit value n + 1 is a plain
  // polynomial despite the recursion.
  RJFFixture F("proc f(n) { if (n > 0) { call f(n - 1); } n = n + 1; }\n"
               "proc main() { var x; call f(x); }");
  const JumpFunction *JF = F.find("f", "n");
  ASSERT_NE(JF, nullptr);
  ASSERT_FALSE(JF->isBottom());
  EXPECT_EQ(JF->str(), "(n + 1)");
}

TEST(ReturnJF, MutualRecursionIsConservativeButPresent) {
  RJFFixture F("global g;\n"
               "proc a(n) { g = 1; if (n > 0) { call b(n - 1); } }\n"
               "proc b(n) { g = 2; if (n > 0) { call a(n - 1); } }\n"
               "proc main() { call a(3); print g; }");
  const JumpFunction *JF = F.find("a", "g");
  ASSERT_NE(JF, nullptr);
  EXPECT_TRUE(JF->isBottom());
}

TEST(ReturnJF, ReadMakesBottom) {
  RJFFixture F("proc f(a) { read a; }\n"
               "proc main() { var x; call f(x); }");
  const JumpFunction *JF = F.find("f", "a");
  ASSERT_NE(JF, nullptr);
  EXPECT_TRUE(JF->isBottom());
}

TEST(ReturnJF, LoopVaryingExitIsBottom) {
  RJFFixture F("proc f(a) { var i; do i = 1, 3 { a = a + 1; } }\n"
               "proc main() { var x; call f(x); }");
  const JumpFunction *JF = F.find("f", "a");
  ASSERT_NE(JF, nullptr);
  EXPECT_TRUE(JF->isBottom());
}

TEST(ReturnJF, IdentityForStoreOfOwnEntry) {
  RJFFixture F("proc f(a, b) { a = b; a = b; }\n"
               "proc main() { var x, y; call f(x, y); }");
  const JumpFunction *JF = F.find("f", "a");
  ASSERT_NE(JF, nullptr);
  EXPECT_TRUE(JF->isPassThrough());
  EXPECT_EQ(JF->str(), "b");
}

TEST(ReturnJF, CountsReflectKnowledge) {
  RJFFixture F("global g;\n"
               "proc known() { g = 3; }\n"
               "proc unknown(a) { read a; }\n"
               "proc main() { var x; call known(); call unknown(x); }");
  // Entries: known's g, unknown's a, and main's transitive g (main calls
  // known, so MOD(main) includes g). Known: both g entries — main's exit
  // value of g composes through known's constant return jump function.
  EXPECT_EQ(F.RJFs->entryCount(), 3u);
  EXPECT_EQ(F.RJFs->knownCount(), 2u);
}

} // namespace
