//===- tests/RoundTripTests.cpp - cross-cutting round trips ---------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/Cloning.h"
#include "frontend/AstPrinter.h"
#include "ir/IRPrinter.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/Programs.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

//===----------------------------------------------------------------------===//
// Printer round trips on generated programs and the suite.
//===----------------------------------------------------------------------===//

class GeneratedRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedRoundTrip, AstPrintParsePrintIsStable) {
  GeneratorConfig Config;
  Config.Seed = GetParam();
  std::string Source = generateProgram(Config);
  Program First = parseOk(Source);
  std::string Printed = printProgram(First);
  Program Second = parseOk(Printed);
  EXPECT_EQ(Printed, printProgram(Second));
}

TEST_P(GeneratedRoundTrip, ReprintedProgramAnalyzesIdentically) {
  GeneratorConfig Config;
  Config.Seed = GetParam();
  std::string Source = generateProgram(Config);
  Program Ast = parseOk(Source);
  auto M1 = lowerProgram(Ast);
  Program Reparsed = parseOk(printProgram(Ast));
  auto M2 = lowerProgram(Reparsed);
  IPCPResult R1 = runIPCP(*M1);
  IPCPResult R2 = runIPCP(*M2);
  EXPECT_EQ(R1.TotalConstantRefs, R2.TotalConstantRefs);
  EXPECT_EQ(R1.TotalEntryConstants, R2.TotalEntryConstants);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedRoundTrip,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(SuiteRoundTrip, EveryProgramReprintsStably) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    Program First = parseOk(Prog.Source);
    std::string Printed = printProgram(First);
    Program Second = parseOk(Printed);
    EXPECT_EQ(Printed, printProgram(Second)) << Prog.Name;
  }
}

TEST(IRPrinterCoverage, SSAFormPrintsPhisAndCallOuts) {
  auto M = lowerOk("global g;\n"
                   "proc setter(o) { o = o + 5; g = 6; }\n"
                   "proc main() { var x, c; read c; if (c) { x = 1; } else "
                   "{ x = 2; } call setter(x); print x + g; }");
  auto Clone = M->clone();
  CallGraph CG(*Clone);
  ModRefInfo MRI = ModRefInfo::compute(*Clone, CG);
  for (const std::unique_ptr<Procedure> &P : Clone->procedures())
    constructSSA(*P, MRI);
  std::string Text = printModule(*Clone);
  EXPECT_NE(Text.find("phi"), std::string::npos);
  EXPECT_NE(Text.find("callout"), std::string::npos);
  EXPECT_NE(Text.find("entry("), std::string::npos);
  EXPECT_EQ(Text.find("load x"), std::string::npos)
      << "promoted scalars leave no loads";
}

//===----------------------------------------------------------------------===//
// The oracle itself must catch fabricated wrong answers.
//===----------------------------------------------------------------------===//

TEST(OracleSelfTest, FlagsFabricatedConstants) {
  auto M = lowerOk("proc f(a) { print a; }\n"
                   "proc main() { call f(1); call f(2); }");
  IPCPResult R = runIPCP(*M);
  // The honest result has no constant for f.a; forge one.
  for (ProcedureResult &PR : R.Procs)
    if (PR.Name == "f")
      PR.EntryConstants.push_back({"a", 1});
  OracleReport Report = checkSoundness(*M, R);
  EXPECT_FALSE(Report.Sound) << "the oracle must reject a = 1 (a is also 2)";
  ASSERT_FALSE(Report.Violations.empty());
  EXPECT_NE(Report.Violations[0].find("observed"), std::string::npos);
}

TEST(OracleSelfTest, AcceptsVacuousClaimsForDeadProcedures) {
  auto M = lowerOk("proc dead(x) { print x; }\n"
                   "proc main() { print 0; }");
  IPCPResult R = runIPCP(*M);
  for (ProcedureResult &PR : R.Procs)
    if (PR.Name == "dead")
      PR.EntryConstants.push_back({"x", 123});
  OracleReport Report = checkSoundness(*M, R);
  EXPECT_TRUE(Report.Sound)
      << "claims about never-invoked procedures are vacuously true";
}

TEST(OracleSelfTest, ReportsCheckedWork) {
  auto M = lowerOk("proc f(a) { print a; }\n"
                   "proc main() { call f(7); call f(7); }");
  IPCPResult R = runIPCP(*M);
  OracleReport Report = checkSoundness(*M, R);
  EXPECT_TRUE(Report.Sound);
  EXPECT_EQ(Report.DynamicEntries, 3u) << "main + two f entries";
  EXPECT_GE(Report.CheckedPairs, 2u) << "a = 7 checked on each f entry";
}

//===----------------------------------------------------------------------===//
// Known-but-irrelevant constants (Metzger & Stroud discussion).
//===----------------------------------------------------------------------===//

TEST(IrrelevantConstants, CountedButNotSubstituted) {
  // g is constant on entry to f, but f never references it.
  auto M = lowerOk("global g;\n"
                   "proc f(a) { print a; }\n"
                   "proc sibling() { print g; }\n"
                   "proc main() { g = 3; call f(1); call sibling(); }");
  IPCPResult R = runIPCP(*M);
  const ProcedureResult *F = R.findProc("f");
  ASSERT_NE(F, nullptr);
  // f's extended formals include g only if f (transitively) touches it —
  // it does not, so g is not even in CONSTANTS(f). sibling gets g and
  // uses it; main knows g = 0 on entry but never reads it before the
  // store: that is the irrelevant one.
  const ProcedureResult *Main = R.findProc("main");
  EXPECT_GE(Main->IrrelevantConstants, 1u);
  EXPECT_EQ(R.findProc("sibling")->IrrelevantConstants, 0u);
  EXPECT_GT(R.Stats.get("constants_known_irrelevant"), 0u);
}

//===----------------------------------------------------------------------===//
// Determinism of the cloning planner.
//===----------------------------------------------------------------------===//

TEST(CloningDeterminism, SameInputSamePlan) {
  const char *Source = "proc k(n, w) { print n * w; }\n"
                       "proc main() { call k(1, 5); call k(2, 5); call "
                       "k(3, 5); }";
  auto M1 = lowerOk(Source);
  auto M2 = lowerOk(Source);
  CloningResult R1 = cloneForConstants(*M1);
  CloningResult R2 = cloneForConstants(*M2);
  EXPECT_EQ(R1.ClonesCreated, R2.ClonesCreated);
  EXPECT_EQ(R1.RefsAfter, R2.RefsAfter);
  EXPECT_EQ(printModule(*M1), printModule(*M2));
}

//===----------------------------------------------------------------------===//
// Scale smoke: a few hundred procedures stay fast and sound.
//===----------------------------------------------------------------------===//

TEST(Scale, LargeGeneratedProgramAnalyzesQuickly) {
  GeneratorConfig Config;
  Config.Seed = 4242;
  Config.NumProcs = 200;
  Config.NumGlobals = 10;
  auto M = lowerOk(generateProgram(Config));
  EXPECT_GT(M->instructionCount(), 4000u);

  Timer T;
  IPCPResult R = runIPCP(*M);
  EXPECT_LT(T.seconds(), 10.0) << "analysis must stay interactive";
  EXPECT_GT(R.TotalConstantRefs, 0u);

  ExecutionOptions Exec;
  Exec.MaxSteps = 5'000'000;
  OracleReport Report = checkSoundness(*M, R, Exec);
  EXPECT_TRUE(Report.Sound) << Report.str();
}

} // namespace
