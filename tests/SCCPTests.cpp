//===- tests/SCCPTests.cpp - sparse conditional constant prop tests -------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/ModRef.h"
#include "analysis/SCCP.h"
#include "analysis/SSAConstruction.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Promotes one named procedure and runs SCCP over it.
struct SCCPFixture {
  std::unique_ptr<Module> M;
  std::unordered_map<Procedure *, SSAResult> SSA;

  explicit SCCPFixture(const std::string &Source) {
    M = lowerOk(Source);
    CallGraph CG(*M);
    ModRefInfo MRI = ModRefInfo::compute(*M, CG);
    for (const std::unique_ptr<Procedure> &P : M->procedures())
      SSA.emplace(P.get(), constructSSA(*P, MRI));
  }

  SCCPResult run(const std::string &Name, SCCPOptions Opts = {}) {
    return runSCCP(*getProc(*M, Name), Opts);
  }

  /// Lattice value of the SSA value behind the I-th source-level load.
  LatticeValue loadValue(const std::string &Name, const SCCPResult &R,
                         unsigned Index) {
    const SSAResult &ProcSSA = SSA.at(getProc(*M, Name));
    EXPECT_LT(Index, ProcSSA.Loads.size());
    return R.valueOf(ProcSSA.Loads[Index].Replacement);
  }
};

TEST(SCCP, FoldsStraightLineArithmetic) {
  SCCPFixture F("proc main() { var x, y; x = 6; y = x * 7; print y; }");
  SCCPResult R = F.run("main");
  // print's load of y (the last load).
  LatticeValue V = F.loadValue("main", R, F.SSA.at(getProc(*F.M, "main"))
                                              .Loads.size() - 1);
  ASSERT_TRUE(V.isConstant());
  EXPECT_EQ(V.getConstant(), 42);
}

TEST(SCCP, MergesAgreeingBranches) {
  SCCPFixture F("proc main() { var x, c; read c; if (c) { x = 5; } else { "
                "x = 5; } print x; }");
  SCCPResult R = F.run("main");
  const SSAResult &SSA = F.SSA.at(getProc(*F.M, "main"));
  LatticeValue V = R.valueOf(SSA.Loads.back().Replacement);
  ASSERT_TRUE(V.isConstant()) << "both arms store 5";
  EXPECT_EQ(V.getConstant(), 5);
}

TEST(SCCP, ConflictingBranchesAreBottom) {
  SCCPFixture F("proc main() { var x, c; read c; if (c) { x = 5; } else { "
                "x = 6; } print x; }");
  SCCPResult R = F.run("main");
  const SSAResult &SSA = F.SSA.at(getProc(*F.M, "main"));
  EXPECT_TRUE(R.valueOf(SSA.Loads.back().Replacement).isBottom());
}

TEST(SCCP, ConstantConditionKeepsDeadEdgeUnexecutable) {
  SCCPFixture F("proc main() { var x; x = 1; if (x == 1) { print 10; } else "
                "{ print 20; } }");
  SCCPResult R = F.run("main");
  Procedure *Main = getProc(*F.M, "main");
  unsigned ExecutablePrints = 0;
  for (const std::unique_ptr<BasicBlock> &BB : Main->blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (isa<PrintInst>(Inst.get()) && R.isExecutable(BB.get()))
        ++ExecutablePrints;
  EXPECT_EQ(ExecutablePrints, 1u) << "the else arm is statically dead";
}

TEST(SCCP, DeadBranchDoesNotPolluteMerge) {
  // Classic SCCP superiority over ordinary constant propagation: the
  // x = 2 in the dead arm must not lower the merge.
  SCCPFixture F("proc main() { var x, f; f = 0; x = 1; if (f) { x = 2; } "
                "print x; }");
  SCCPResult R = F.run("main");
  const SSAResult &SSA = F.SSA.at(getProc(*F.M, "main"));
  LatticeValue V = R.valueOf(SSA.Loads.back().Replacement);
  ASSERT_TRUE(V.isConstant());
  EXPECT_EQ(V.getConstant(), 1);
}

TEST(SCCP, LoopInvariantStaysConstantThroughPhis) {
  SCCPFixture F("proc main() { var i, k; k = 3; do i = 1, 4 { print k; } }");
  SCCPResult R = F.run("main");
  const SSAResult &SSA = F.SSA.at(getProc(*F.M, "main"));
  // The print inside the loop loads k.
  bool FoundK = false;
  for (const SSAResult::ReplacedLoad &Load : SSA.Loads) {
    LatticeValue V = R.valueOf(Load.Replacement);
    if (V.isConstant() && V.getConstant() == 3)
      FoundK = true;
  }
  EXPECT_TRUE(FoundK);
}

TEST(SCCP, LoopCounterIsBottom) {
  SCCPFixture F("proc main() { var i, s; do i = 1, 4 { s = s + i; } print "
                "s; }");
  SCCPResult R = F.run("main");
  const SSAResult &SSA = F.SSA.at(getProc(*F.M, "main"));
  EXPECT_TRUE(R.valueOf(SSA.Loads.back().Replacement).isBottom());
}

TEST(SCCP, ReadIsBottom) {
  SCCPFixture F("proc main() { var x; read x; print x; }");
  SCCPResult R = F.run("main");
  const SSAResult &SSA = F.SSA.at(getProc(*F.M, "main"));
  EXPECT_TRUE(R.valueOf(SSA.Loads.back().Replacement).isBottom());
}

TEST(SCCP, ArrayLoadIsBottom) {
  SCCPFixture F("proc main() { var a[3]; a[0] = 7; print a[0]; }");
  SCCPResult R = F.run("main");
  Procedure *Main = getProc(*F.M, "main");
  auto *ALoad = firstInst<ArrayLoadInst>(*Main);
  ASSERT_NE(ALoad, nullptr);
  EXPECT_TRUE(R.valueOf(ALoad).isBottom())
      << "arrays are opaque, exactly as in the paper";
}

TEST(SCCP, DivisionByZeroDeclines) {
  SCCPFixture F("proc main() { var x, y; x = 0; y = 5 / x; print y; }");
  SCCPResult R = F.run("main");
  const SSAResult &SSA = F.SSA.at(getProc(*F.M, "main"));
  EXPECT_TRUE(R.valueOf(SSA.Loads.back().Replacement).isBottom());
}

TEST(SCCP, EntrySeedsInjectInterproceduralConstants) {
  SCCPFixture F("proc f(a) { print a * 2; }\nproc main() { call f(3); }");
  Procedure *Proc = getProc(*F.M, "f");
  // Unseeded: the formal is bottom.
  SCCPResult Unseeded = F.run("f");
  auto *Mul = firstInst<BinaryInst>(*Proc);
  ASSERT_NE(Mul, nullptr);
  EXPECT_TRUE(Unseeded.valueOf(Mul).isBottom());
  // Seeded with CONSTANTS(f) = {a = 3}: the body folds.
  SCCPOptions Opts;
  Opts.EntrySeeds[Proc->formals()[0]] = LatticeValue::constant(3);
  SCCPResult Seeded = F.run("f", Opts);
  LatticeValue V = Seeded.valueOf(Mul);
  ASSERT_TRUE(V.isConstant());
  EXPECT_EQ(V.getConstant(), 6);
}

TEST(SCCP, CallOutDefaultsToBottom) {
  SCCPFixture F("proc setter(o) { o = 9; }\n"
                "proc main() { var x; call setter(x); print x; }");
  SCCPResult R = F.run("main");
  const SSAResult &SSA = F.SSA.at(getProc(*F.M, "main"));
  EXPECT_TRUE(R.valueOf(SSA.Loads.back().Replacement).isBottom());
}

TEST(SCCP, CallOutHookSuppliesReturnValues) {
  SCCPFixture F("proc setter(o) { o = 9; }\n"
                "proc main() { var x; call setter(x); print x; }");
  SCCPOptions Opts;
  Opts.CallOutEval = [](const CallOutInst *,
                        const std::function<LatticeValue(const Value *)> &) {
    return LatticeValue::constant(9);
  };
  SCCPResult R = F.run("main", Opts);
  const SSAResult &SSA = F.SSA.at(getProc(*F.M, "main"));
  LatticeValue V = R.valueOf(SSA.Loads.back().Replacement);
  ASSERT_TRUE(V.isConstant());
  EXPECT_EQ(V.getConstant(), 9);
}

TEST(SCCP, UnreachableCodeStaysTop) {
  SCCPFixture F("proc main() { var x; x = 1; if (x == 2) { x = x + 40; "
                "print x; } }");
  SCCPResult R = F.run("main");
  Procedure *Main = getProc(*F.M, "main");
  for (const std::unique_ptr<BasicBlock> &BB : Main->blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (isa<PrintInst>(Inst.get())) {
        EXPECT_FALSE(R.isExecutable(BB.get()));
      }
}

TEST(SCCP, ConstantCountStatistic) {
  SCCPFixture F("proc main() { var x, y; x = 2; y = x + 3; print y; }");
  SCCPResult R = F.run("main");
  EXPECT_GE(R.constantValueCount(), 1u);
}

} // namespace
