//===- tests/SSATests.cpp - SSA construction tests ------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/ModRef.h"
#include "analysis/SSAConstruction.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Lowers, computes MOD/REF, and promotes every procedure; returns the
/// module plus per-procedure results.
struct SSAFixture {
  std::unique_ptr<Module> M;
  std::unordered_map<Procedure *, SSAResult> Results;

  explicit SSAFixture(const std::string &Source, bool WorstCaseMod = false) {
    M = lowerOk(Source);
    CallGraph CG(*M);
    ModRefInfo MRI = WorstCaseMod ? ModRefInfo::worstCase(*M)
                                  : ModRefInfo::compute(*M, CG);
    for (const std::unique_ptr<Procedure> &P : M->procedures())
      Results.emplace(P.get(), constructSSA(*P, MRI));
    expectVerifies(*M, VerifyMode::SSA);
  }

  Procedure *proc(const std::string &Name) { return getProc(*M, Name); }
  SSAResult &result(const std::string &Name) {
    return Results.at(proc(Name));
  }
};

TEST(SSA, StraightLineLeavesNoLoadsOrStores) {
  SSAFixture F("proc main() { var x, y; x = 1; y = x + 2; print y; }");
  Procedure *Main = F.proc("main");
  EXPECT_EQ(countInsts<LoadInst>(*Main), 0u);
  EXPECT_EQ(countInsts<StoreInst>(*Main), 0u);
  EXPECT_EQ(countInsts<PhiInst>(*Main), 0u) << "no joins, no phis";
}

TEST(SSA, DiamondInsertsPhiAtJoin) {
  SSAFixture F(
      "proc main() { var x; if (x == 0) { x = 1; } else { x = 2; } print x; "
      "}");
  Procedure *Main = F.proc("main");
  auto *Phi = firstInst<PhiInst>(*Main);
  ASSERT_NE(Phi, nullptr);
  EXPECT_EQ(Phi->getNumIncoming(), 2u);
  EXPECT_EQ(Phi->getVariable()->getName(), "x");
  // Both incoming values are the stored constants.
  for (unsigned I = 0; I != 2; ++I) {
    auto *C = dyn_cast<ConstantInt>(Phi->getIncomingValue(I));
    ASSERT_NE(C, nullptr);
    EXPECT_TRUE(C->getValue() == 1 || C->getValue() == 2);
  }
}

TEST(SSA, LoopCreatesHeaderPhi) {
  SSAFixture F("proc main() { var i; while (i < 4) { i = i + 1; } print i; }");
  Procedure *Main = F.proc("main");
  EXPECT_GE(countInsts<PhiInst>(*Main), 1u);
}

TEST(SSA, FormalsStartAtEntryValues) {
  SSAFixture F("proc f(a) { print a + 1; }\nproc main() { call f(3); }");
  Procedure *Proc = F.proc("f");
  auto *Add = firstInst<BinaryInst>(*Proc);
  ASSERT_NE(Add, nullptr);
  auto *Entry = dyn_cast<EntryValue>(Add->getLHS());
  ASSERT_NE(Entry, nullptr);
  EXPECT_EQ(Entry->getVariable()->getName(), "a");
}

TEST(SSA, ReferencedGlobalsArePromoted) {
  SSAFixture F("global g;\nproc main() { print g; g = 2; print g; }");
  SSAResult &R = F.result("main");
  bool GlobalPromoted = false;
  for (Variable *Var : R.PromotedVars)
    if (Var->isGlobal())
      GlobalPromoted = true;
  EXPECT_TRUE(GlobalPromoted);
  ASSERT_EQ(R.Loads.size(), 2u);
  EXPECT_TRUE(isa<EntryValue>(R.Loads[0].Replacement))
      << "first print reads the entry value";
  auto *C = dyn_cast<ConstantInt>(R.Loads[1].Replacement);
  ASSERT_NE(C, nullptr) << "second print reads the stored constant";
  EXPECT_EQ(C->getValue(), 2);
}

TEST(SSA, LoadMapRecordsEveryScalarReference) {
  SSAFixture F("proc main() { var x, y; x = 1; y = x; print x + y; }");
  EXPECT_EQ(F.result("main").Loads.size(), 3u);
}

TEST(SSA, ExitValuesCaptureFinalState) {
  SSAFixture F("proc f(a, b) { a = b + 1; }\nproc main() { var x; call f(x, "
               "2); }");
  SSAResult &R = F.result("f");
  Procedure *Proc = F.proc("f");
  Variable *A = Proc->formals()[0];
  Variable *B = Proc->formals()[1];
  ASSERT_TRUE(R.ExitValues.count(A));
  ASSERT_TRUE(R.ExitValues.count(B));
  EXPECT_TRUE(isa<BinaryInst>(R.ExitValues.at(A)));
  EXPECT_TRUE(isa<EntryValue>(R.ExitValues.at(B)))
      << "unmodified formal exits with its entry value";
}

TEST(SSA, CallCreatesCallOutsForKills) {
  SSAFixture F("global g;\n"
               "proc setter(o) { o = 5; g = 6; }\n"
               "proc main() { var x; call setter(x); print x + g; }");
  Procedure *Main = F.proc("main");
  EXPECT_EQ(countInsts<CallOutInst>(*Main), 2u) << "x and g";
  // The prints' loads resolve to the CallOuts.
  SSAResult &R = F.result("main");
  unsigned CallOutLoads = 0;
  for (const SSAResult::ReplacedLoad &Load : R.Loads)
    if (isa<CallOutInst>(Load.Replacement))
      ++CallOutLoads;
  EXPECT_EQ(CallOutLoads, 2u);
}

TEST(SSA, NoCallOutsWhenCalleeIsPure) {
  SSAFixture F("proc pure(a) { print a; }\n"
               "proc main() { var x; x = 1; call pure(x); print x; }");
  Procedure *Main = F.proc("main");
  EXPECT_EQ(countInsts<CallOutInst>(*Main), 0u);
  // x's final print still sees the constant 1 directly.
  SSAResult &R = F.result("main");
  bool SawConstant = false;
  for (const SSAResult::ReplacedLoad &Load : R.Loads)
    if (auto *C = dyn_cast<ConstantInt>(Load.Replacement))
      SawConstant |= C->getValue() == 1;
  EXPECT_TRUE(SawConstant);
}

TEST(SSA, WorstCaseModeKillsAtEveryCall) {
  SSAFixture F("global g;\n"
               "proc pure(a) { print a; }\n"
               "proc main() { var x; x = 1; call pure(x); print x + g; }",
               /*WorstCaseMod=*/true);
  Procedure *Main = F.proc("main");
  EXPECT_EQ(countInsts<CallOutInst>(*Main), 2u)
      << "without MOD information the call kills x and g";
}

TEST(SSA, CallInValuesSnapshotPreCallState) {
  SSAFixture F("global g;\n"
               "proc setter() { g = 5; }\n"
               "proc main() { g = 1; call setter(); call setter(); }");
  SSAResult &R = F.result("main");
  Procedure *Main = F.proc("main");
  std::vector<CallInst *> Calls = Main->callSites();
  ASSERT_EQ(Calls.size(), 2u);
  Variable *G = F.M->findGlobal("g");
  // Before the first call g is the stored 1; before the second it is the
  // first call's CallOut.
  auto *C = dyn_cast<ConstantInt>(R.CallInValues.at(Calls[0]).at(G));
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->getValue(), 1);
  EXPECT_TRUE(isa<CallOutInst>(R.CallInValues.at(Calls[1]).at(G)));
}

TEST(SSA, NestedLoopsAndBranchesVerify) {
  SSAFixture F(
      "global acc;\n"
      "proc main() {\n"
      "  var i, j, x;\n"
      "  do i = 1, 3 {\n"
      "    do j = 1, 3 {\n"
      "      if (i == j) { x = x + 1; } else { x = x - 1; }\n"
      "    }\n"
      "    while (x > 2) { x = x - 2; }\n"
      "    acc = acc + x;\n"
      "  }\n"
      "  print acc;\n"
      "}\n");
  // The fixture already verifies SSA form; additionally, every phi must
  // have as many incoming values as predecessors.
  Procedure *Main = F.proc("main");
  for (const std::unique_ptr<BasicBlock> &BB : Main->blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (auto *Phi = dyn_cast<PhiInst>(Inst.get())) {
        EXPECT_EQ(Phi->getNumIncoming(), BB->predecessors().size());
      }
}

TEST(SSA, InfiniteLoopStillVerifies) {
  // `while (1)` never terminates dynamically, but its false edge keeps
  // the exit block statically reachable, so SSA (and exit values) still
  // exist — they are simply never consulted at run time.
  SSAFixture F("proc main() { var x; while (1) { x = x + 1; } }");
  Procedure *Main = F.proc("main");
  EXPECT_NE(Main->getExitBlock(), nullptr);
  EXPECT_FALSE(F.result("main").ExitValues.empty());
}

TEST(SSA, EntryValuesAreCanonical) {
  SSAFixture F("proc f(a) { print a + a; }\nproc main() { call f(1); }");
  Procedure *Proc = F.proc("f");
  auto *Add = firstInst<BinaryInst>(*Proc);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->getLHS(), Add->getRHS())
      << "one EntryValue object per (procedure, variable)";
}

} // namespace
