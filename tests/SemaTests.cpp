//===- tests/SemaTests.cpp - MiniFort semantic checks ---------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

TEST(Sema, AcceptsValidProgram) {
  parseOk("global g;\n"
          "proc helper(a, b) { a = b + g; }\n"
          "proc main() { var x; call helper(x, 2); }");
}

TEST(Sema, DuplicateGlobal) {
  EXPECT_NE(parseErrors("global g; global g;\nproc main() { }")
                .find("redefinition of global 'g'"),
            std::string::npos);
}

TEST(Sema, DuplicateProcedure) {
  EXPECT_NE(parseErrors("proc f() { }\nproc f() { }\nproc main() { }")
                .find("redefinition of procedure 'f'"),
            std::string::npos);
}

TEST(Sema, ProcedureClashesWithGlobal) {
  EXPECT_NE(parseErrors("global f;\nproc f() { }\nproc main() { }")
                .find("same name as a global"),
            std::string::npos);
}

TEST(Sema, DuplicateParameter) {
  EXPECT_NE(parseErrors("proc f(a, a) { }\nproc main() { }")
                .find("redefinition of parameter 'a'"),
            std::string::npos);
}

TEST(Sema, DuplicateLocal) {
  EXPECT_NE(parseErrors("proc main() { var x; var x; }")
                .find("redefinition of local variable 'x'"),
            std::string::npos);
}

TEST(Sema, LocalShadowingParameterRejected) {
  EXPECT_NE(parseErrors("proc f(a) { var a; }\nproc main() { }")
                .find("redefinition"),
            std::string::npos);
}

TEST(Sema, LocalMayShadowGlobal) {
  parseOk("global g;\nproc main() { var g; g = 1; }");
}

TEST(Sema, FlatProcedureScope) {
  // Fortran-style: declarations in nested blocks are procedure-wide, so a
  // second declaration anywhere in the body is a redefinition...
  EXPECT_NE(parseErrors("proc main() { if (1) { var x; } else { var x; } }")
                .find("redefinition"),
            std::string::npos);
  // ...and a use before the textual declaration is legal (reads zero).
  parseOk("proc main() { x = 1; var x; }");
}

TEST(Sema, UndeclaredVariable) {
  EXPECT_NE(parseErrors("proc main() { x = 1; }")
                .find("undeclared variable 'x'"),
            std::string::npos);
}

TEST(Sema, UndefinedProcedure) {
  EXPECT_NE(parseErrors("proc main() { call nope(); }")
                .find("undefined procedure 'nope'"),
            std::string::npos);
}

TEST(Sema, CallArityMismatch) {
  std::string Errs =
      parseErrors("proc f(a, b) { }\nproc main() { call f(1); }");
  EXPECT_NE(Errs.find("expects 2 argument(s), got 1"), std::string::npos);
}

TEST(Sema, ForwardReferencesAllowed) {
  parseOk("proc main() { call later(1); }\nproc later(x) { }");
}

TEST(Sema, RecursionAllowed) {
  parseOk("proc f(n) { if (n > 0) { call f(n - 1); } }\n"
          "proc main() { call f(3); }");
}

TEST(Sema, ArrayWithoutSubscript) {
  EXPECT_NE(parseErrors("proc main() { var a[3]; print a; }")
                .find("used without a subscript"),
            std::string::npos);
}

TEST(Sema, ScalarWithSubscript) {
  EXPECT_NE(parseErrors("proc main() { var x; print x[0]; }")
                .find("subscripted like an array"),
            std::string::npos);
}

TEST(Sema, ArrayCannotBePassed) {
  EXPECT_NE(parseErrors("proc f(a) { }\n"
                        "proc main() { var m[3]; call f(m); }")
                .find("cannot be passed as an argument"),
            std::string::npos);
}

TEST(Sema, ArrayElementCanBePassed) {
  parseOk("proc f(a) { }\nproc main() { var m[3]; call f(m[1]); }");
}

TEST(Sema, DoLoopInductionMustBeScalar) {
  EXPECT_NE(parseErrors("proc main() { var a[3]; do a = 1, 2 { } }")
                .find("is an array"),
            std::string::npos);
}

TEST(Sema, DoLoopInductionAssignmentWarns) {
  DiagnosticsEngine Diags;
  std::optional<Program> Prog = parseAndCheck(
      "proc main() { var i; do i = 1, 3 { i = 0; } }", Diags);
  EXPECT_TRUE(Prog.has_value());
  bool SawWarning = false;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Kind == DiagKind::Warning &&
        D.Message.find("induction") != std::string::npos)
      SawWarning = true;
  EXPECT_TRUE(SawWarning) << Diags.str();
}

TEST(Sema, MainRequired) {
  EXPECT_NE(parseErrors("proc f() { }").find("no 'main'"),
            std::string::npos);
  parseOk("proc f() { }", /*RequireMain=*/false);
}

TEST(Sema, MainMustTakeNoParameters) {
  EXPECT_NE(parseErrors("proc main(x) { }")
                .find("'main' must take no parameters"),
            std::string::npos);
}

TEST(Sema, AssignToUndeclaredArray) {
  EXPECT_NE(parseErrors("proc main() { a[0] = 1; }")
                .find("undeclared array 'a'"),
            std::string::npos);
}

TEST(Sema, GlobalsVisibleInAllProcedures) {
  parseOk("global shared;\n"
          "proc a() { shared = 1; }\n"
          "proc b() { print shared; }\n"
          "proc main() { call a(); call b(); }");
}

} // namespace
