//===- tests/ServiceTests.cpp - analysis-service layer tests --------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The service layer behind tools/ipcp_serverd (docs/SERVICE.md): the
// ipcp-service-v1 request codec, the response envelope, the queue
// primitives, resident session caches with write-behind persistence,
// and the determinism contract — concurrent execution through the
// session turnstile produces byte-identical responses to a serial run.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "core/ServiceEngine.h"
#include "support/BoundedQueue.h"
#include "support/ThreadPool.h"
#include "workload/Programs.h"
#include "workload/ServiceWorkload.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

using namespace ipcp;

namespace {

const char *CalleeSource = R"(
global g;
proc callee(x) { print x + g; }
proc main() { g = 2; call callee(3); }
)";

ServiceEngine::Config basicConfig() {
  ServiceEngine::Config Conf;
  Conf.SuiteResolver = [](const std::string &Name, std::string &Out) {
    const SuiteProgram *Prog = findSuiteProgram(Name);
    if (!Prog)
      return false;
    Out = Prog->Source;
    return true;
  };
  return Conf;
}

/// Parses a request line through \p Engine, expecting success.
ServiceRequest parseOk(const ServiceEngine &Engine, const std::string &Line) {
  ServiceRequest Req;
  std::string Code, Error;
  EXPECT_TRUE(Engine.parseRequestLine(Line, Req, &Code, &Error))
      << Code << ": " << Error;
  return Req;
}

/// Parses a request line expecting failure; returns the error code.
std::string parseCode(const ServiceEngine &Engine, const std::string &Line) {
  ServiceRequest Req;
  std::string Code, Error;
  EXPECT_FALSE(Engine.parseRequestLine(Line, Req, &Code, &Error)) << Line;
  return Code;
}

uint64_t counter(const JsonValue &Body, const char *Name) {
  const JsonValue *Report = Body.find("report");
  if (!Report)
    return ~0ull;
  const JsonValue *Result = Report->find("result");
  if (!Result)
    return ~0ull;
  const JsonValue *Counters = Result->find("counters");
  if (!Counters)
    return ~0ull;
  const JsonValue *C = Counters->find(Name);
  return C ? uint64_t(C->asInt()) : 0;
}

std::string statusOf(const JsonValue &Body) {
  const JsonValue *S = Body.find("status");
  return S ? S->asString() : "<missing>";
}

TEST(ServiceCodec, ParsesAnalyzeFields) {
  ServiceEngine Engine(basicConfig());
  ServiceRequest Req = parseOk(
      Engine,
      R"({"op":"analyze","id":42,"suite":"simple","session":"s","complete":false,)"
      R"("scrub_timings":true,"options":{"forward_jf":"pass-through","return_jf":false},)"
      R"("limits":{"prop_evals":100}})");
  EXPECT_EQ(Req.Op, ServiceRequest::Kind::Analyze);
  EXPECT_TRUE(Req.HasId);
  EXPECT_EQ(Req.Id.asInt(), 42);
  EXPECT_EQ(Req.Suite, "simple");
  EXPECT_EQ(Req.Name, "simple"); // defaults to the suite name
  EXPECT_EQ(Req.Session, "s");
  EXPECT_TRUE(Req.ScrubTimings);
  EXPECT_EQ(Req.Opts.ForwardKind, JumpFunctionKind::PassThrough);
  EXPECT_FALSE(Req.Opts.UseReturnJumpFunctions);
  EXPECT_EQ(Req.Opts.Limits.MaxPropagationEvals, 100u);
  // "passthrough" (the driver's spelling) is accepted too.
  Req = parseOk(Engine,
                R"({"op":"analyze","source":"proc main() { print 1; }",)"
                R"("options":{"forward_jf":"passthrough"}})");
  EXPECT_EQ(Req.Opts.ForwardKind, JumpFunctionKind::PassThrough);
  EXPECT_EQ(Req.Name, "<request>");
}

TEST(ServiceCodec, RejectsMalformedRequests) {
  ServiceEngine Engine(basicConfig());
  EXPECT_EQ(parseCode(Engine, "not json"), "bad-json");
  EXPECT_EQ(parseCode(Engine, "[1,2]"), "bad-request");
  EXPECT_EQ(parseCode(Engine, R"({"id":1})"), "bad-request");
  EXPECT_EQ(parseCode(Engine, R"({"op":"frobnicate"})"), "bad-request");
  // Unknown keys are rejected so a typo cannot silently use defaults.
  EXPECT_EQ(parseCode(Engine, R"({"op":"analyze","suite":"x","sesion":"s"})"),
            "bad-request");
  EXPECT_EQ(parseCode(Engine, R"({"op":"stats","suite":"x"})"), "bad-request");
  // Exactly one of source/suite.
  EXPECT_EQ(parseCode(Engine, R"({"op":"analyze"})"), "bad-request");
  EXPECT_EQ(parseCode(Engine, R"({"op":"analyze","suite":"a","source":"b"})"),
            "bad-request");
  // Malformed nested objects.
  EXPECT_EQ(parseCode(
                Engine,
                R"({"op":"analyze","suite":"x","options":{"forward_jf":"??"}})"),
            "bad-request");
  EXPECT_EQ(
      parseCode(Engine, R"({"op":"analyze","suite":"x","options":{"jf":1}})"),
      "bad-request");
  EXPECT_EQ(parseCode(
                Engine,
                R"({"op":"analyze","suite":"x","limits":{"parse_depth":0}})"),
            "bad-request");
  EXPECT_EQ(
      parseCode(Engine, R"({"op":"analyze","suite":"x","limits":{"cpus":1}})"),
      "bad-request");
  EXPECT_EQ(parseCode(Engine,
                      R"({"op":"analyze","suite":"x","limits":{"tokens":-1}})"),
            "bad-request");
}

TEST(ServiceCodec, LimitsMergeStricterWins) {
  ServiceEngine::Config Conf = basicConfig();
  Conf.DefaultLimits.MaxTokens = 100;
  Conf.DefaultLimits.MaxParseDepth = 64;
  ServiceEngine Engine(std::move(Conf));
  // A request cannot raise or disable a server-configured budget...
  ServiceRequest Req = parseOk(
      Engine, R"({"op":"analyze","suite":"x","limits":{"tokens":1000}})");
  EXPECT_EQ(Req.Opts.Limits.MaxTokens, 100u);
  Req =
      parseOk(Engine, R"({"op":"analyze","suite":"x","limits":{"tokens":0}})");
  EXPECT_EQ(Req.Opts.Limits.MaxTokens, 100u);
  // ...but can tighten it.
  Req =
      parseOk(Engine, R"({"op":"analyze","suite":"x","limits":{"tokens":50}})");
  EXPECT_EQ(Req.Opts.Limits.MaxTokens, 50u);
  // An unconfigured (unlimited) budget takes the request value as-is.
  Req = parseOk(Engine,
                R"({"op":"analyze","suite":"x","limits":{"deadline_ms":5}})");
  EXPECT_EQ(Req.Opts.Limits.DeadlineMs, 5u);
  // Parse depth is always finite: the merge is a plain min.
  Req = parseOk(Engine,
                R"({"op":"analyze","suite":"x","limits":{"parse_depth":512}})");
  EXPECT_EQ(Req.Opts.Limits.MaxParseDepth, 64u);
  Req = parseOk(Engine,
                R"({"op":"analyze","suite":"x","limits":{"parse_depth":8}})");
  EXPECT_EQ(Req.Opts.Limits.MaxParseDepth, 8u);
  // Defaults apply when the request has no limits object at all.
  Req = parseOk(Engine, R"({"op":"analyze","suite":"x"})");
  EXPECT_EQ(Req.Opts.Limits.MaxTokens, 100u);
}

TEST(ServiceCodec, ParsesBatches) {
  ServiceEngine Engine(basicConfig());
  ServiceRequest Req = parseOk(
      Engine,
      R"({"op":"analyze-batch","id":"b","requests":[)"
      R"({"suite":"simple"},{"op":"analyze","id":7,"suite":"trfd"}]})");
  EXPECT_EQ(Req.Op, ServiceRequest::Kind::AnalyzeBatch);
  ASSERT_EQ(Req.Batch.size(), 2u);
  EXPECT_EQ(Req.Batch[0].Suite, "simple");
  EXPECT_FALSE(Req.Batch[0].HasId);
  EXPECT_EQ(Req.Batch[1].Suite, "trfd");
  EXPECT_TRUE(Req.Batch[1].HasId);

  EXPECT_EQ(parseCode(Engine, R"({"op":"analyze-batch"})"), "bad-request");
  EXPECT_EQ(parseCode(Engine, R"({"op":"analyze-batch","requests":[]})"),
            "bad-request");
  EXPECT_EQ(parseCode(Engine,
                      R"({"op":"analyze-batch","requests":[{"op":"stats"}]})"),
            "bad-request");
  EXPECT_EQ(parseCode(Engine, R"({"op":"analyze-batch","requests":[{}]})"),
            "bad-request");
}

TEST(ServiceEnvelope, EchoesIdAndOrdersFields) {
  JsonValue Body = JsonValue::object();
  Body.set("status", "ok");
  JsonValue Id("client-7");
  std::string Line = buildServiceEnvelope(3, &Id, std::move(Body)).dump();
  EXPECT_EQ(Line,
            R"({"schema":"ipcp-service-v1","seq":3,"id":"client-7","status":"ok"})");
  JsonValue NoId = JsonValue::object();
  NoId.set("status", "ok");
  EXPECT_EQ(buildServiceEnvelope(0, nullptr, std::move(NoId)).dump(),
            R"({"schema":"ipcp-service-v1","seq":0,"status":"ok"})");
}

TEST(ServiceEngineTest, AnalyzeProducesDriverShapedReport) {
  ServiceEngine Engine(basicConfig());
  ServiceRequest Req;
  Req.Source = CalleeSource;
  Req.Name = "<request>";
  JsonValue Body = Engine.analyze(Req);
  EXPECT_EQ(statusOf(Body), "ok");
  const JsonValue *Report = Body.find("report");
  ASSERT_NE(Report, nullptr);
  EXPECT_EQ(Report->find("schema")->asString(), "ipcp-report-v1");
  ASSERT_NE(Report->find("result"), nullptr);
  // x=3 and g=2 propagate into callee; g=0 is known at main's entry.
  EXPECT_EQ(Report->find("result")->find("total_entry_constants")->asInt(), 3);
}

TEST(ServiceEngineTest, ReportsSourceAndSuiteErrors) {
  ServiceEngine Engine(basicConfig());
  ServiceRequest Req;
  Req.Source = "proc main() { print undeclared_var; }";
  JsonValue Body = Engine.analyze(Req);
  EXPECT_EQ(statusOf(Body), "error");
  EXPECT_EQ(Body.find("error")->find("code")->asString(), "source-error");

  ServiceRequest Unknown;
  Unknown.Suite = "no-such-program";
  Body = Engine.analyze(Unknown);
  EXPECT_EQ(statusOf(Body), "error");
  EXPECT_EQ(Body.find("error")->find("code")->asString(), "unknown-suite");

  // Without a resolver installed, every suite request fails.
  ServiceEngine Bare((ServiceEngine::Config()));
  ServiceRequest Suite;
  Suite.Suite = "simple";
  Body = Bare.analyze(Suite);
  EXPECT_EQ(Body.find("error")->find("code")->asString(), "unknown-suite");
}

TEST(ServiceEngineTest, FrontendTripDegradesWithResultFreeReport) {
  ServiceEngine Engine(basicConfig());
  ServiceRequest Req;
  Req.Source = CalleeSource;
  Req.Opts.Limits.MaxTokens = 3;
  JsonValue Body = Engine.analyze(Req);
  EXPECT_EQ(statusOf(Body), "degraded");
  const JsonValue *Report = Body.find("report");
  ASSERT_NE(Report, nullptr);
  EXPECT_EQ(Report->find("result"), nullptr);
  EXPECT_TRUE(Report->find("degraded")->asBool());
  ASSERT_NE(Report->find("degradation"), nullptr);
}

TEST(ServiceEngineTest, WarmSessionSkipsAllEvaluations) {
  ServiceEngine Engine(basicConfig());
  ServiceRequest Req;
  Req.Suite = "simple";
  Req.Name = "simple";
  Req.Session = "warm-test";
  JsonValue Cold = Engine.analyze(Req);
  JsonValue Warm = Engine.analyze(Req);
  EXPECT_EQ(statusOf(Cold), "ok");
  EXPECT_EQ(statusOf(Warm), "ok");
  EXPECT_GT(counter(Cold, "prop_evaluations"), 0u);
  EXPECT_EQ(counter(Warm, "prop_evaluations"), 0u);
  EXPECT_GT(counter(Warm, "cache_hits"), 0u);
  // Results are identical modulo the warm-volatile fields.
  JsonValue NormCold = *Cold.find("report");
  JsonValue NormWarm = *Warm.find("report");
  normalizeReportForDiff(NormCold);
  normalizeReportForDiff(NormWarm);
  EXPECT_EQ(NormCold.dump(), NormWarm.dump());

  JsonValue Stats = Engine.statsBody();
  const JsonValue *S = Stats.find("stats");
  EXPECT_EQ(S->find("analyze_requests")->asInt(), 2);
  EXPECT_EQ(S->find("warm_hits")->asInt(), 1);
  EXPECT_EQ(S->find("sessions_resident")->asInt(), 1);
}

TEST(ServiceEngineTest, DistinctOptionsNeverShareASession) {
  ServiceEngine Engine(basicConfig());
  ServiceRequest Poly;
  Poly.Suite = Poly.Name = "simple";
  Poly.Session = "s";
  ServiceRequest Lit = Poly;
  Lit.Opts.ForwardKind = JumpFunctionKind::Literal;
  Engine.analyze(Poly);
  JsonValue Other = Engine.analyze(Lit);
  // Different fingerprint => separate (cold) session, not a poisoned hit.
  EXPECT_EQ(counter(Other, "cache_hits"), 0u);
  EXPECT_EQ(Engine.residentSessions(), 2u);
}

TEST(ServiceEngineTest, BatchBodySharesTheSingleRequestPath) {
  ServiceEngine Engine(basicConfig());
  ServiceRequest Batch;
  Batch.Op = ServiceRequest::Kind::AnalyzeBatch;
  ServiceRequest A;
  A.Suite = A.Name = "simple";
  A.ScrubTimings = true;
  ServiceRequest B;
  B.Source = "proc main() { print undeclared; }";
  B.Name = "<request>";
  B.Id = JsonValue("second");
  B.HasId = true;
  Batch.Batch = {A, B};

  JsonValue Body = Engine.analyzeBatch(Batch);
  EXPECT_EQ(statusOf(Body), "ok");
  const JsonValue *Responses = Body.find("responses");
  ASSERT_NE(Responses, nullptr);
  ASSERT_EQ(Responses->size(), 2u);
  EXPECT_EQ(Responses->at(0).find("index")->asInt(), 0);
  EXPECT_EQ(statusOf(Responses->at(0)), "ok");
  EXPECT_EQ(Responses->at(1).find("id")->asString(), "second");
  EXPECT_EQ(statusOf(Responses->at(1)), "error");
  // The item body is exactly what a lone analyze of the same request
  // produces — index/id aside, the bytes cannot diverge.
  JsonValue Lone = Engine.analyze(A);
  JsonValue Item = Responses->at(0);
  Item.remove("index");
  EXPECT_EQ(Item.dump(), Lone.dump());
}

TEST(ServiceEngineTest, ConcurrentTurnstileMatchesSerialBytes) {
  // A request mix with heavy session sharing: the turnstile must replay
  // the serial warm/cold order no matter how the pool interleaves.
  std::vector<ServiceRequest> Requests;
  const char *Suites[] = {"simple", "trfd", "mdg"};
  for (int I = 0; I != 12; ++I) {
    ServiceRequest Req;
    Req.Suite = Req.Name = Suites[I % 3];
    Req.Session = I % 2 ? "even" : "odd";
    Req.ScrubTimings = true;
    Requests.push_back(std::move(Req));
  }

  ServiceEngine Serial(basicConfig());
  std::vector<std::string> Expected;
  for (const ServiceRequest &Req : Requests)
    Expected.push_back(Serial.analyze(Req).dump());

  for (unsigned Round = 0; Round != 3; ++Round) {
    ServiceEngine Conc(basicConfig());
    std::vector<std::string> Got(Requests.size());
    ThreadPool Pool(4);
    for (size_t I = 0; I != Requests.size(); ++I) {
      // Turns are reserved on this thread in request order — exactly
      // what the daemon's reader thread does.
      ServiceEngine::SessionTurn Turn = Conc.reserveTurn(Requests[I]);
      Pool.submit([&Conc, &Got, &Requests, I, Turn]() mutable {
        Got[I] = Conc.analyze(Requests[I], std::move(Turn)).dump();
      });
    }
    Pool.wait();
    for (size_t I = 0; I != Requests.size(); ++I)
      EXPECT_EQ(Got[I], Expected[I]) << "request " << I << " round " << Round;
  }
}

TEST(ServiceEngineTest, EvictionWritesBehindAndReloads) {
  std::string Dir = ::testing::TempDir() + "ipcp-service-evict";
  std::filesystem::remove_all(Dir);
  ServiceEngine::Config Conf = basicConfig();
  Conf.CacheDir = Dir;
  Conf.MaxSessions = 1;

  {
    ServiceEngine Engine(Conf);
    ServiceRequest A;
    A.Suite = A.Name = "simple";
    A.Session = "a";
    ServiceRequest B = A;
    // Eviction is per cache bucket, so B must land in A's bucket to
    // contend for the single resident slot.
    for (int I = 0;; ++I) {
      B.Session = "b" + std::to_string(I);
      if (ServiceEngine::bucketFor(ServiceEngine::sessionKeyFor(B)) ==
          ServiceEngine::bucketFor(ServiceEngine::sessionKeyFor(A)))
        break;
    }
    Engine.analyze(A);
    Engine.analyze(B); // evicts session a, persisting it
    JsonValue Stats = Engine.statsBody();
    const JsonValue *S = Stats.find("stats");
    EXPECT_EQ(S->find("session_evictions")->asInt(), 1);
    EXPECT_EQ(S->find("write_behind_saves")->asInt(), 1);
    EXPECT_EQ(S->find("sessions_resident")->asInt(), 1);
    // Re-acquiring the evicted session loads the disk tier and is warm.
    JsonValue Again = Engine.analyze(A);
    EXPECT_EQ(counter(Again, "prop_evaluations"), 0u);
  }

  // A fresh engine (daemon restart) warms up from the same files.
  ServiceEngine Fresh(Conf);
  ServiceRequest A;
  A.Suite = A.Name = "simple";
  A.Session = "a";
  JsonValue Warm = Fresh.analyze(A);
  EXPECT_EQ(counter(Warm, "prop_evaluations"), 0u);
  EXPECT_EQ(Fresh.statsBody().find("stats")->find("disk_loads")->asInt(), 1);
  std::filesystem::remove_all(Dir);
}

TEST(ServiceEngineTest, FlushPersistsAndDropsEverything) {
  std::string Dir = ::testing::TempDir() + "ipcp-service-flush";
  std::filesystem::remove_all(Dir);
  ServiceEngine::Config Conf = basicConfig();
  Conf.CacheDir = Dir;
  ServiceEngine Engine(Conf);
  ServiceRequest Req;
  Req.Suite = Req.Name = "simple";
  Req.Session = "s";
  Engine.analyze(Req);
  JsonValue Flush = Engine.flushCacheBody();
  EXPECT_EQ(Flush.find("sessions_flushed")->asInt(), 1);
  EXPECT_EQ(Flush.find("persisted")->asInt(), 1);
  EXPECT_EQ(Engine.residentSessions(), 0u);
  EXPECT_FALSE(std::filesystem::is_empty(Dir));
  std::filesystem::remove_all(Dir);
}

TEST(AdmissionGateTest, BoundsInFlightWork) {
  AdmissionGate Gate(2);
  EXPECT_TRUE(Gate.tryAcquire());
  EXPECT_TRUE(Gate.tryAcquire());
  EXPECT_FALSE(Gate.tryAcquire());
  EXPECT_EQ(Gate.inFlight(), 2u);
  Gate.release();
  EXPECT_TRUE(Gate.tryAcquire());
  Gate.release(2);
  // Batch admission is all-or-nothing.
  EXPECT_FALSE(Gate.tryAcquire(3));
  EXPECT_TRUE(Gate.tryAcquire(2));
  // Limit zero admits nothing — the deterministic backpressure config.
  AdmissionGate Closed(0);
  EXPECT_FALSE(Closed.tryAcquire());
}

TEST(OrderedResultQueueTest, DeliversInSequenceOrder) {
  OrderedResultQueue<int> Queue;
  Queue.push(2, 20);
  Queue.push(0, 0);
  Queue.push(1, 10);
  Queue.close();
  int Out = -1;
  EXPECT_TRUE(Queue.pop(Out));
  EXPECT_EQ(Out, 0);
  EXPECT_TRUE(Queue.pop(Out));
  EXPECT_EQ(Out, 10);
  EXPECT_TRUE(Queue.pop(Out));
  EXPECT_EQ(Out, 20);
  EXPECT_FALSE(Queue.pop(Out));
}

TEST(OrderedResultQueueTest, ConcurrentProducersOneConsumer) {
  OrderedResultQueue<uint64_t> Queue;
  ThreadPool Pool(4);
  const uint64_t N = 64;
  for (uint64_t I = 0; I != N; ++I)
    Pool.submit([&Queue, I] { Queue.push(I, I * 3); });
  std::vector<uint64_t> Seen;
  for (uint64_t I = 0; I != N; ++I) {
    uint64_t Out = 0;
    EXPECT_TRUE(Queue.pop(Out));
    Seen.push_back(Out);
  }
  Pool.wait();
  Queue.close();
  for (uint64_t I = 0; I != N; ++I)
    EXPECT_EQ(Seen[I], I * 3);
}

TEST(ServiceWorkloadTest, LogsAreDeterministicAndWellFormed) {
  ServiceLogConfig Config;
  Config.Seed = 9;
  Config.Requests = 10;
  std::vector<std::string> A = generateServiceLog(Config);
  std::vector<std::string> B = generateServiceLog(Config);
  EXPECT_EQ(A, B);
  ASSERT_GE(A.size(), 3u); // analyses + stats + shutdown
  EXPECT_NE(A.back().find("shutdown"), std::string::npos);

  // Every generated line parses as a valid request.
  ServiceEngine Engine(basicConfig());
  unsigned Analyses = 0;
  for (const std::string &Line : A) {
    ServiceRequest Req = parseOk(Engine, Line);
    if (Req.Op == ServiceRequest::Kind::Analyze)
      ++Analyses;
    else if (Req.Op == ServiceRequest::Kind::AnalyzeBatch)
      Analyses += unsigned(Req.Batch.size());
  }
  EXPECT_EQ(Analyses, 10u);

  Config.Seed = 10;
  EXPECT_NE(generateServiceLog(Config), A);
}

} // namespace
