//===- tests/ShardedServiceTests.cpp - sharded service layer tests --------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The multi-worker layer (docs/SCALING.md): shard routing and session
// affinity, the shared content-addressed store that lets any worker
// warm-start any session, the bounded reorder buffer, overload
// backpressure, and the headline contract — the response stream is
// byte-identical across shard counts.
//
//===----------------------------------------------------------------------===//

#include "core/ServiceEngine.h"
#include "core/ShardedService.h"
#include "support/BoundedQueue.h"
#include "support/ContentStore.h"
#include "workload/Programs.h"
#include "workload/ServiceWorkload.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

ServiceEngine::Config engineConfig() {
  ServiceEngine::Config Conf;
  Conf.ScrubTimings = true;
  Conf.SuiteResolver = [](const std::string &Name, std::string &Out) {
    const SuiteProgram *Prog = findSuiteProgram(Name);
    if (!Prog)
      return false;
    Out = Prog->Source;
    return true;
  };
  return Conf;
}

ShardedService::Config serviceConfig(unsigned Shards) {
  ShardedService::Config Conf;
  Conf.Shards = Shards;
  Conf.Jobs = 4;
  Conf.Engine = engineConfig();
  return Conf;
}

/// Replays \p Lines through one stream the way the daemon does: a
/// consumer thread drains responses while the caller submits.
std::vector<std::string> runLines(ShardedService &Svc,
                                  const std::vector<std::string> &Lines) {
  std::unique_ptr<ShardedService::Stream> St = Svc.openStream();
  std::vector<std::string> Out;
  std::thread Consumer([&] {
    std::string Response;
    while (St->popResponse(Response))
      Out.push_back(Response);
  });
  for (const std::string &Line : Lines)
    if (Svc.submitLine(*St, Line))
      break;
  Svc.finishStream(*St);
  Consumer.join();
  return Out;
}

uint64_t reportCounter(const JsonValue &Body, const char *Name) {
  const JsonValue *Report = Body.find("report");
  if (!Report)
    return ~0ull;
  const JsonValue *Result = Report->find("result");
  if (!Result)
    return ~0ull;
  const JsonValue *Counters = Result->find("counters");
  if (!Counters)
    return ~0ull;
  const JsonValue *C = Counters->find(Name);
  return C ? uint64_t(C->asInt()) : 0;
}

TEST(ContentStoreTest, RoundTripDedupAndRebind) {
  std::string Dir = ::testing::TempDir() + "ipcp-content-store";
  std::filesystem::remove_all(Dir);
  ContentStore Store(Dir);

  std::string Key = Store.put("hello summaries");
  ASSERT_FALSE(Key.empty());
  EXPECT_EQ(Key, ContentStore::contentKey("hello summaries"));
  // Same bytes again: the object already exists, no second write.
  EXPECT_EQ(Store.put("hello summaries"), Key);
  EXPECT_EQ(Store.stats().ObjectsWritten, 1u);
  EXPECT_EQ(Store.stats().DedupHits, 1u);

  EXPECT_TRUE(Store.bind("prog\nopts", Key));
  std::string Bytes;
  ASSERT_TRUE(Store.get("prog\nopts", Bytes));
  EXPECT_EQ(Bytes, "hello summaries");
  EXPECT_TRUE(Store.contains("prog\nopts"));

  // Rebinding moves the name to the new object; the old object remains.
  std::string Key2 = Store.putNamed("prog\nopts", "v2 bytes");
  ASSERT_FALSE(Key2.empty());
  ASSERT_TRUE(Store.get("prog\nopts", Bytes));
  EXPECT_EQ(Bytes, "v2 bytes");
  EXPECT_TRUE(std::filesystem::exists(Store.objectPath(Key)));

  // Unknown names are misses, not errors.
  EXPECT_FALSE(Store.get("no-such-name", Bytes));
  EXPECT_FALSE(Store.contains("no-such-name"));
  EXPECT_GE(Store.stats().Misses, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(ContentStoreTest, DetectsCorruptObjects) {
  std::string Dir = ::testing::TempDir() + "ipcp-content-store-rot";
  std::filesystem::remove_all(Dir);
  ContentStore Store(Dir);
  std::string Key = Store.putNamed("name", "precious bytes");
  ASSERT_FALSE(Key.empty());

  // Flip the blob on disk; the read must fail verification, not return
  // the rotten bytes.
  {
    std::ofstream Out(Store.objectPath(Key), std::ios::binary);
    Out << "precious bytez";
  }
  std::string Bytes;
  EXPECT_FALSE(Store.get("name", Bytes));
  EXPECT_EQ(Store.stats().IntegrityFailures, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(OrderedResultQueueTest, BoundBlocksOutOfOrderButNeverInOrder) {
  OrderedResultQueue<std::string> Q(/*MaxBuffered=*/1);
  // One out-of-order entry fits the bound...
  Q.push(1, "b");
  // ...a second would block, but the in-order entry is always admitted.
  Q.push(0, "a");
  std::thread Blocked([&] { Q.push(2, "c"); });
  std::string Out;
  ASSERT_TRUE(Q.pop(Out));
  EXPECT_EQ(Out, "a");
  ASSERT_TRUE(Q.pop(Out));
  EXPECT_EQ(Out, "b");
  Blocked.join(); // the pops freed the buffer
  ASSERT_TRUE(Q.pop(Out));
  EXPECT_EQ(Out, "c");
  Q.close();
  EXPECT_FALSE(Q.pop(Out));
  EXPECT_LE(Q.peakBuffered(), 2u);
}

TEST(ShardRoutingTest, SessionAffinityIsStableAndCoversShards) {
  // Property: the shard of a request is a pure function of its session
  // key — same key, same shard, on every call and at every request —
  // and enough distinct sessions reach every shard.
  const unsigned Shards = 4;
  std::set<unsigned> Hit;
  for (int I = 0; I != 200; ++I) {
    ServiceRequest Req;
    Req.Suite = Req.Name = "simple";
    Req.Session = "sess-" + std::to_string(I);
    std::string Key = ServiceEngine::sessionKeyFor(Req);
    ASSERT_FALSE(Key.empty());
    unsigned Shard = ShardedService::shardIndexFor(Key, Shards);
    ASSERT_LT(Shard, Shards);
    EXPECT_EQ(Shard, ShardedService::shardIndexFor(Key, Shards));
    EXPECT_EQ(0u, ShardedService::shardIndexFor(Key, 1));
    Hit.insert(Shard);
  }
  EXPECT_EQ(Hit.size(), Shards);

  // Requests that use no session cache have no routing key.
  ServiceRequest Cold;
  Cold.Suite = Cold.Name = "simple";
  EXPECT_TRUE(ServiceEngine::sessionKeyFor(Cold).empty());
  ServiceRequest Complete;
  Complete.Suite = Complete.Name = "simple";
  Complete.Session = "s";
  Complete.Complete = true;
  EXPECT_TRUE(ServiceEngine::sessionKeyFor(Complete).empty());
}

TEST(ShardedServiceTest, CrossShardWarmStartFromSharedStore) {
  // Worker A analyzes and persists; worker B — a different engine with
  // its own resident cache but the same content-addressed store — must
  // warm-start the same program with zero jump-function evaluations.
  std::string Dir = ::testing::TempDir() + "ipcp-cross-shard-warm";
  std::filesystem::remove_all(Dir);
  auto Store = std::make_shared<ContentStore>(Dir);

  ServiceEngine::Config ConfA = engineConfig();
  ConfA.Store = Store;
  ServiceEngine A(ConfA);
  ServiceRequest Req;
  Req.Suite = Req.Name = "simple";
  Req.Session = "on-shard-a";
  JsonValue Cold = A.analyze(Req);
  EXPECT_GT(reportCounter(Cold, "prop_evaluations"), 0u);
  EXPECT_EQ(A.shutdownFlush(), 1u);

  ServiceEngine::Config ConfB = engineConfig();
  ConfB.Store = Store;
  ServiceEngine B(ConfB);
  Req.Session = "on-shard-b"; // different session, same logical name
  JsonValue Warm = B.analyze(Req);
  EXPECT_EQ(reportCounter(Warm, "prop_evaluations"), 0u);
  EXPECT_EQ(B.snapshot().DiskLoads, 1u);
  EXPECT_GE(Store->stats().Loads, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(ShardedServiceTest, ResponsesIdenticalAcrossShardCounts) {
  ServiceLogConfig Log;
  Log.Seed = 17;
  Log.Requests = 60;
  Log.SessionCount = 5;
  Log.Suites = {"simple", "qcd"};
  Log.EndWithStats = false;
  Log.EndWithShutdown = false;
  std::vector<std::string> Lines = generateServiceLog(Log);

  ShardedService One(serviceConfig(1));
  ShardedService Three(serviceConfig(3));
  std::vector<std::string> A = runLines(One, Lines);
  std::vector<std::string> B = runLines(Three, Lines);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A[I], B[I]) << "response " << I << " diverged across shards";
}

TEST(ShardedServiceTest, ContextsEngineIdenticalAcrossShardCounts) {
  // The contexts engine is deterministic end to end: the same
  // engine=contexts request stream must produce byte-identical
  // responses at one shard and four, each echoing the engine and
  // carrying the context_study block (docs/CONTEXTS.md). CI's
  // contexts-smoke job repeats this through the socket daemon.
  std::vector<std::string> Lines;
  const char *Suites[] = {"simple", "qcd", "trfd", "mdg"};
  for (unsigned I = 0; I != 24; ++I)
    Lines.push_back(std::string("{\"op\":\"analyze\",\"id\":\"c") +
                    std::to_string(I) + "\",\"session\":\"s" +
                    std::to_string(I % 5) + "\",\"suite\":\"" +
                    Suites[I % 4] +
                    "\",\"options\":{\"engine\":\"contexts\"}}");

  ShardedService One(serviceConfig(1));
  ShardedService Four(serviceConfig(4));
  std::vector<std::string> A = runLines(One, Lines);
  std::vector<std::string> B = runLines(Four, Lines);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I], B[I]) << "contexts response " << I
                          << " diverged across shards";
    EXPECT_NE(A[I].find("\"engine\":\"contexts\""), std::string::npos);
    EXPECT_NE(A[I].find("\"context_study\""), std::string::npos);
  }
}

TEST(ShardedServiceTest, EvictionPointsAreShardCountInvariant) {
  // Force heavy eviction (one resident session per cache bucket): the
  // warm/cold sequence — and with it every response byte — must still
  // be identical whether one shard holds every bucket or several shards
  // split them, both memory-only and with a shared write-behind store.
  ServiceLogConfig Log;
  Log.Seed = 23;
  Log.Requests = 80;
  Log.SessionCount = 12;
  Log.Suites = {"simple", "qcd"};
  Log.EndWithStats = false;
  Log.EndWithShutdown = false;
  std::vector<std::string> Lines = generateServiceLog(Log);

  auto Run = [&](unsigned Shards, unsigned Jobs, const std::string &Dir) {
    ShardedService::Config Conf = serviceConfig(Shards);
    Conf.Jobs = Jobs;
    Conf.Engine.MaxSessions = 1;
    Conf.Engine.CacheDir = Dir;
    ShardedService Svc(Conf);
    std::vector<std::string> Out = runLines(Svc, Lines);
    Svc.shutdownFlush();
    return Out;
  };

  std::vector<std::string> A = Run(1, 2, "");
  std::vector<std::string> B = Run(3, 4, "");
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A[I], B[I]) << "memory-only response " << I
                          << " diverged across shards under eviction";

  std::string D1 = ::testing::TempDir() + "ipcp-evict-inv-1";
  std::string D4 = ::testing::TempDir() + "ipcp-evict-inv-4";
  std::filesystem::remove_all(D1);
  std::filesystem::remove_all(D4);
  std::vector<std::string> C = Run(1, 4, D1);
  std::vector<std::string> D = Run(4, 2, D4);
  ASSERT_EQ(C.size(), D.size());
  for (size_t I = 0; I != C.size(); ++I)
    EXPECT_EQ(C[I], D[I]) << "store-backed response " << I
                          << " diverged across shards under eviction";
  std::filesystem::remove_all(D1);
  std::filesystem::remove_all(D4);
}

TEST(ShardedServiceTest, OverloadAnswersEveryLineInOrderWithBoundedBusy) {
  // Queue limit zero: every analyze is rejected `busy`, deterministically
  // and in submission order, and nothing leaks or reorders.
  ShardedService::Config Conf = serviceConfig(2);
  Conf.QueueLimit = 0;
  ShardedService Svc(Conf);

  std::vector<std::string> Lines;
  for (int I = 0; I != 40; ++I)
    Lines.push_back(R"({"op":"analyze","id":"r)" + std::to_string(I) +
                    R"(","suite":"simple","session":"s)" +
                    std::to_string(I % 4) + R"("})");
  std::vector<std::string> Out = runLines(Svc, Lines);
  ASSERT_EQ(Out.size(), Lines.size());
  for (size_t I = 0; I != Out.size(); ++I) {
    EXPECT_NE(Out[I].find("\"status\":\"busy\""), std::string::npos);
    EXPECT_NE(Out[I].find("\"id\":\"r" + std::to_string(I) + "\""),
              std::string::npos)
        << "response " << I << " out of order";
  }

  // The stats barrier reports the rejections and per-shard breakdown.
  std::vector<std::string> Stats =
      runLines(Svc, {R"({"op":"stats","id":"s"})"});
  ASSERT_EQ(Stats.size(), 1u);
  EXPECT_NE(Stats[0].find("\"busy_rejections\":40"), std::string::npos);
  EXPECT_NE(Stats[0].find("\"shards\":["), std::string::npos);
}

TEST(ShardedServiceTest, StatsAggregateAcrossShards) {
  ShardedService Svc(serviceConfig(3));
  std::vector<std::string> Lines;
  for (int I = 0; I != 12; ++I)
    Lines.push_back(R"({"op":"analyze","id":"r)" + std::to_string(I) +
                    R"(","suite":"simple","session":"s)" +
                    std::to_string(I) + R"("})");
  Lines.push_back(R"({"op":"stats","id":"st"})");
  std::vector<std::string> Out = runLines(Svc, Lines);
  ASSERT_EQ(Out.size(), 13u);

  std::string Error;
  std::optional<JsonValue> Parsed = JsonValue::parse(Out.back(), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  JsonValue &Stats = *Parsed;
  const JsonValue *Body = Stats.find("stats");
  ASSERT_NE(Body, nullptr);
  EXPECT_EQ(Body->find("analyze_requests")->asInt(), 12);
  const JsonValue *PerShard = Body->find("shards");
  ASSERT_NE(PerShard, nullptr);
  ASSERT_EQ(PerShard->size(), 3u);
  int64_t Sum = 0;
  for (size_t I = 0; I != PerShard->size(); ++I)
    Sum += PerShard->at(I).find("analyze_requests")->asInt();
  EXPECT_EQ(Sum, 12);
  EXPECT_EQ(int64_t(Svc.residentSessions()), 12);
}

TEST(ServiceWorkloadTest, StreamMatchesMaterializedLog) {
  ServiceLogConfig Log;
  Log.Seed = 5;
  Log.Requests = 30;
  Log.SessionCount = 4;
  std::vector<std::string> Whole = generateServiceLog(Log);
  ServiceLogStream Stream(Log);
  std::vector<std::string> Streamed;
  std::string Line;
  while (Stream.next(Line))
    Streamed.push_back(Line);
  EXPECT_EQ(Whole, Streamed);
  EXPECT_EQ(Stream.totalAnalyzeRequests(), 30u);

  // Multi-session logs actually spread across sessions.
  std::set<std::string> Sessions;
  for (const std::string &L : Whole) {
    size_t Pos = L.find("\"session\":\"");
    if (Pos != std::string::npos) {
      size_t End = L.find('"', Pos + 11);
      Sessions.insert(L.substr(Pos + 11, End - Pos - 11));
    }
  }
  EXPECT_GT(Sessions.size(), 1u);
}

} // namespace
