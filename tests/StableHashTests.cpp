//===- tests/StableHashTests.cpp - Stable structural hashing --------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Pins the properties the summary cache's keys depend on
// (docs/INCREMENTAL.md):
//
//  - the byte-level format: 64-bit FNV-1a with the published offset
//    basis and prime, integers serialized little-endian regardless of
//    host byte order, strings length-prefixed;
//  - run-to-run and state invariance: the hash of a procedure body
//    depends only on its structure, never on allocation order, ambient
//    trace/counter state, or which module clone it lives in;
//  - sensitivity: any single-instruction mutation changes the hash.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/Instructions.h"
#include "support/StableHash.h"
#include "support/Trace.h"
#include "workload/Generator.h"
#include "workload/Study.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

//===----------------------------------------------------------------------===//
// Byte-level format
//===----------------------------------------------------------------------===//

// The classic published FNV-1a test vectors: an empty input returns the
// offset basis untouched, and single characters match the reference
// implementation. These pin the exact function, not just "some hash".
TEST(StableHash, PinnedFnv1aVectors) {
  EXPECT_EQ(stableHashBytes(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(stableHashBytes("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(stableHashBytes("foobar"), 0x85944171f73967e8ULL);
}

// Integers enter the stream as explicit little-endian bytes, so the
// hash of u32/u64 must equal the hash of the equivalent byte string on
// every host. This is what makes the on-disk keys endian-portable.
TEST(StableHash, IntegersAreLittleEndian) {
  StableHasher A;
  A.u32(0x04030201u);
  EXPECT_EQ(A.result(), stableHashBytes(std::string_view("\x01\x02\x03\x04", 4)));

  StableHasher B;
  B.u64(0x0807060504030201ULL);
  EXPECT_EQ(B.result(),
            stableHashBytes(std::string_view("\x01\x02\x03\x04\x05\x06\x07\x08", 8)));
}

// Strings are length-prefixed: "ab"+"c" and "a"+"bc" must differ even
// though the concatenated bytes agree.
TEST(StableHash, StringsAreLengthPrefixed) {
  StableHasher A, B;
  A.str("ab");
  A.str("c");
  B.str("a");
  B.str("bc");
  EXPECT_NE(A.result(), B.result());
}

TEST(StableHash, HexRenderingIsFixedWidth) {
  EXPECT_EQ(stableHashHex(0), "0000000000000000");
  EXPECT_EQ(stableHashHex(0xcbf29ce484222325ULL), "cbf29ce484222325");
}

//===----------------------------------------------------------------------===//
// Invariance
//===----------------------------------------------------------------------===//

const char *const Example = R"(
global acc;

proc helper(a, b) {
  var t;
  t = a + b * 2;
  acc = t;
  a = t;
}

proc main() {
  var x;
  x = 3;
  call helper(x, 4);
  print x;
  print acc;
}
)";

// Lowering the same source twice gives different allocations, different
// instruction/variable ids, different everything except structure — the
// hashes must agree anyway.
TEST(StableHash, RunToRunInvariance) {
  std::unique_ptr<Module> M1 = lowerOk(Example);
  std::unique_ptr<Module> M2 = lowerOk(Example);
  for (const std::unique_ptr<Procedure> &P : M1->procedures()) {
    Procedure *Twin = M2->findProcedure(P->getName());
    ASSERT_NE(Twin, nullptr);
    EXPECT_EQ(hashProcedureBody(*P), hashProcedureBody(*Twin)) << P->getName();
  }
}

// Module::clone preserves structure (and even ids); hashing must not
// distinguish the clone from the original.
TEST(StableHash, CloneInvariance) {
  std::unique_ptr<Module> M = lowerOk(Example);
  std::unique_ptr<Module> C = M->clone();
  for (const std::unique_ptr<Procedure> &P : M->procedures())
    EXPECT_EQ(hashProcedureBody(*P),
              hashProcedureBody(*C->findProcedure(P->getName())));
}

// Ambient observability state — an active trace collector — must be
// invisible to the hash: the cache key of a body cannot depend on how
// the run is being watched.
TEST(StableHash, TraceStateInvariance) {
  std::unique_ptr<Module> M = lowerOk(Example);
  Procedure *P = getProc(*M, "helper");
  uint64_t Plain = hashProcedureBody(*P);

  Trace TraceData;
  Trace::setActive(&TraceData);
  uint64_t Traced = hashProcedureBody(*P);
  Trace::setActive(nullptr);
  EXPECT_EQ(Plain, Traced);
}

// The same invariances over the whole benchmark suite and a spread of
// generated programs: every procedure's hash survives a reload from
// source and a clone.
TEST(StableHash, SuiteAndGeneratedInvariance) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    std::unique_ptr<Module> A = loadSuiteModule(Prog);
    std::unique_ptr<Module> B = loadSuiteModule(Prog);
    std::unique_ptr<Module> C = A->clone();
    for (const std::unique_ptr<Procedure> &P : A->procedures()) {
      uint64_t H = hashProcedureBody(*P);
      EXPECT_EQ(H, hashProcedureBody(*B->findProcedure(P->getName())))
          << Prog.Name << "/" << P->getName();
      EXPECT_EQ(H, hashProcedureBody(*C->findProcedure(P->getName())))
          << Prog.Name << "/" << P->getName();
    }
  }
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    std::string Source = generateProgram(Config);
    std::unique_ptr<Module> A = lowerOk(Source);
    std::unique_ptr<Module> B = lowerOk(Source);
    for (const std::unique_ptr<Procedure> &P : A->procedures())
      EXPECT_EQ(hashProcedureBody(*P),
                hashProcedureBody(*B->findProcedure(P->getName())))
          << "seed " << Seed << "/" << P->getName();
  }
}

//===----------------------------------------------------------------------===//
// Sensitivity
//===----------------------------------------------------------------------===//

/// Hash of procedure \p Name after lowering \p Source.
uint64_t hashOf(const std::string &Source, const std::string &Name) {
  std::unique_ptr<Module> M = lowerOk(Source);
  return hashProcedureBody(*getProc(*M, Name));
}

/// A one-procedure body with a hole for the mutated statement.
std::string fWith(const std::string &Stmt) {
  return "proc f(a) {\n  var t;\n  " + Stmt +
         "\n  a = t;\n}\n"
         "proc main() {\n  var x;\n  x = 5;\n  call f(x);\n  print x;\n}\n";
}

// Single-token source mutations that each change exactly one lowered
// instruction (or one operand of one) must all produce distinct hashes.
TEST(StableHash, SingleInstructionMutationsChangeTheHash) {
  uint64_t H = hashOf(fWith("t = a + 1;"), "f");

  // A different literal.
  EXPECT_NE(H, hashOf(fWith("t = a + 2;"), "f"));
  // A different operator.
  EXPECT_NE(H, hashOf(fWith("t = a - 1;"), "f"));
  // A different operand variable.
  EXPECT_NE(H, hashOf(fWith("t = t + 1;"), "f"));
  // An extra statement.
  EXPECT_NE(H, hashOf(fWith("t = a + 1;\n  print t;"), "f"));
}

// Callee identity and actual shape are part of the body: calls to
// different procedures, or with a literal instead of a variable actual,
// hash differently.
TEST(StableHash, CallSitesAreSensitive) {
  auto MainCalling = [](const std::string &Call) {
    return "proc inc(x) {\n  x = x + 1;\n}\nproc dec(x) {\n  x = x + 1;\n}\n"
           "proc main() {\n  var v;\n  v = 1;\n  " +
           Call + "\n  print v;\n}\n";
  };
  uint64_t H = hashOf(MainCalling("call inc(v);"), "main");
  EXPECT_NE(H, hashOf(MainCalling("call dec(v);"), "main"));
  EXPECT_NE(H, hashOf(MainCalling("call inc(1);"), "main"));
}

// Across a generated corpus: prepending one `print` to any procedure
// must change that procedure's hash and leave every other hash alone
// (the property the early-cutoff invalidation rests on).
TEST(StableHash, MutationCorpusSensitivity) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumProcs = 4;
    std::unique_ptr<Module> M = lowerOk(generateProgram(Config));
    for (const std::unique_ptr<Procedure> &Victim : M->procedures()) {
      std::unique_ptr<Module> Mut = M->clone();
      Procedure *P = Mut->findProcedure(Victim->getName());
      P->getEntryBlock()->insertAtTop(std::make_unique<PrintInst>(
          Mut->nextInstId(), SourceLoc(), Mut->getConstant(9)));
      for (const std::unique_ptr<Procedure> &Q : M->procedures()) {
        uint64_t Before = hashProcedureBody(*Q);
        uint64_t After = hashProcedureBody(*Mut->findProcedure(Q->getName()));
        if (Q.get() == Victim.get())
          EXPECT_NE(Before, After) << "seed " << Seed << "/" << Q->getName();
        else
          EXPECT_EQ(Before, After) << "seed " << Seed << "/" << Q->getName();
      }
    }
  }
}

} // namespace
