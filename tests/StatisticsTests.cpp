//===- tests/StatisticsTests.cpp - Observability layer tests --------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Covers the observability layer end to end: StatisticSet counters and
// the Counters.def registry, the Timer, the JSON tree (escaping, writer/
// parser round trips, error reporting), the Trace span/event/counter
// machinery, and a golden check that the driver-facing JSON report for a
// fixture program parses and carries the expected CONSTANTS(p) sets,
// stage timings, and jump-function histogram.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "support/Json.h"
#include "support/Statistics.h"
#include "support/Trace.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

//===----------------------------------------------------------------------===//
// StatisticSet and the counter registry
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, AddGetDefault) {
  StatisticSet S;
  EXPECT_EQ(S.get("missing"), 0u);
  S.add("a");
  S.add("a", 4);
  EXPECT_EQ(S.get("a"), 5u);
}

TEST(StatisticsTest, MergeSumsPerName) {
  StatisticSet A, B;
  A.add("x", 2);
  A.add("y", 1);
  B.add("x", 3);
  B.add("z", 7);
  A.merge(B);
  EXPECT_EQ(A.get("x"), 5u);
  EXPECT_EQ(A.get("y"), 1u);
  EXPECT_EQ(A.get("z"), 7u);
  EXPECT_EQ(B.get("x"), 3u); // merge does not mutate its argument
}

TEST(StatisticsTest, ToJsonIsFlatObject) {
  StatisticSet S;
  S.add("beta", 2);
  S.add("alpha", 1);
  JsonValue J = S.toJson();
  ASSERT_TRUE(J.isObject());
  ASSERT_EQ(J.size(), 2u);
  EXPECT_EQ(J.find("alpha")->asInt(), 1);
  EXPECT_EQ(J.find("beta")->asInt(), 2);
}

TEST(StatisticsTest, RegistryKnowsPipelineCounters) {
  EXPECT_TRUE(isRegisteredCounter("time_total_us"));
  EXPECT_TRUE(isRegisteredCounter("jf_polynomial"));
  EXPECT_TRUE(isRegisteredCounter("prop_lowerings"));
  EXPECT_FALSE(isRegisteredCounter("no_such_counter"));
  EXPECT_NE(describeCounter("constants_found"), nullptr);
  EXPECT_EQ(describeCounter("no_such_counter"), nullptr);
  EXPECT_FALSE(registeredCounters().empty());
}

TEST(StatisticsTest, FormatStatsTableShowsDescriptions) {
  StatisticSet S;
  S.add("constants_found", 3);
  S.add("mystery", 9);
  std::string Table = formatStatsTable(S);
  EXPECT_NE(Table.find("constants_found"), std::string::npos);
  EXPECT_NE(Table.find(describeCounter("constants_found")), std::string::npos);
  // Unregistered counters still print, after the registered block.
  EXPECT_NE(Table.find("mystery"), std::string::npos);
}

TEST(StatisticsTest, TimerMeasuresNonNegativeAndRestarts) {
  Timer T;
  volatile unsigned Sink = 0;
  for (unsigned I = 0; I != 10000; ++I)
    Sink = Sink + I;
  double First = T.seconds();
  EXPECT_GE(First, 0.0);
  T.restart();
  EXPECT_LE(T.seconds(), First + 1.0); // restarted clock is near zero
}

//===----------------------------------------------------------------------===//
// JSON tree, writer, parser
//===----------------------------------------------------------------------===//

TEST(JsonTest, EscapeControlAndQuotes) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("\n\t"), "\\n\\t");
  EXPECT_EQ(jsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndReplaces) {
  JsonValue O = JsonValue::object();
  O.set("z", 1);
  O.set("a", 2);
  O.set("z", 3); // replace in place, order unchanged
  ASSERT_EQ(O.size(), 2u);
  EXPECT_EQ(O.members()[0].first, "z");
  EXPECT_EQ(O.members()[0].second.asInt(), 3);
  EXPECT_EQ(O.members()[1].first, "a");
}

TEST(JsonTest, DumpCompactAndPretty) {
  JsonValue O = JsonValue::object();
  O.set("n", 42);
  O.set("list", JsonValue::array());
  O.find("list"); // const lookup compiles
  EXPECT_EQ(O.dump(), "{\"n\":42,\"list\":[]}");
  EXPECT_NE(O.dump(2).find("\n"), std::string::npos);
}

TEST(JsonTest, RoundTripThroughParser) {
  JsonValue Doc = JsonValue::object();
  Doc.set("name", "heat\n\"quoted\"");
  Doc.set("count", int64_t(-7));
  Doc.set("rate", 0.5);
  Doc.set("flag", true);
  Doc.set("nothing", JsonValue());
  JsonValue Arr = JsonValue::array();
  Arr.push(1);
  Arr.push("two");
  JsonValue Nested = JsonValue::object();
  Nested.set("deep", JsonValue::array());
  Arr.push(std::move(Nested));
  Doc.set("items", std::move(Arr));

  for (unsigned Indent : {0u, 2u}) {
    std::string Error;
    std::optional<JsonValue> Back = JsonValue::parse(Doc.dump(Indent), &Error);
    ASSERT_TRUE(Back.has_value()) << Error;
    EXPECT_EQ(*Back, Doc) << "indent " << Indent;
  }
}

TEST(JsonTest, ParseStandardDocument) {
  std::string Error;
  auto V = JsonValue::parse(
      "  { \"a\" : [ 1 , 2.5 , -3 ], \"u\" : \"\\u0041\\uD83D\\uDE00\" } ",
      &Error);
  ASSERT_TRUE(V.has_value()) << Error;
  EXPECT_EQ(V->find("a")->at(1).asDouble(), 2.5);
  EXPECT_EQ(V->find("u")->asString(), "A\xF0\x9F\x98\x80"); // surrogate pair
}

TEST(JsonTest, ParseErrorsReported) {
  for (const char *Bad : {"", "{", "[1,]", "{\"a\":}", "tru", "\"\\x\"",
                          "1 2", "{\"a\":1,}"}) {
    std::string Error;
    EXPECT_FALSE(JsonValue::parse(Bad, &Error).has_value()) << Bad;
    EXPECT_FALSE(Error.empty()) << Bad;
  }
}

TEST(JsonTest, StructuralEqualityIgnoresKeyOrder) {
  auto A = JsonValue::parse("{\"x\":1,\"y\":2}");
  auto B = JsonValue::parse("{\"y\":2,\"x\":1}");
  auto C = JsonValue::parse("{\"y\":2,\"x\":3}");
  ASSERT_TRUE(A && B && C);
  EXPECT_EQ(*A, *B);
  EXPECT_NE(*A, *C);
  // Int/double cross-kind numeric equality.
  EXPECT_EQ(JsonValue(int64_t(2)), JsonValue(2.0));
}

//===----------------------------------------------------------------------===//
// Trace
//===----------------------------------------------------------------------===//

TEST(TraceTest, SpansNestAndClose) {
  Trace T;
  Trace *Prev = Trace::setActive(&T);
  {
    ScopedTraceSpan Outer("outer");
    traceEvent("ev", "detail");
    traceCounter("hits", 2);
    { ScopedTraceSpan Inner("inner", "p1"); }
  }
  Trace::setActive(Prev);

  ASSERT_EQ(T.spans().size(), 2u);
  EXPECT_EQ(T.spans()[0].Name, "outer");
  EXPECT_FALSE(T.spans()[0].Open);
  EXPECT_EQ(T.spans()[1].Name, "inner");
  EXPECT_EQ(T.spans()[1].Detail, "p1");
  EXPECT_EQ(T.spans()[1].Parent, 0u);
  EXPECT_EQ(T.spans()[1].Depth, 1u);
  ASSERT_EQ(T.events().size(), 1u);
  EXPECT_EQ(T.events()[0].Span, 0u);
  EXPECT_EQ(T.counters().get("hits"), 2u);
}

TEST(TraceTest, HelpersAreNoOpsWhenInactive) {
  ASSERT_EQ(Trace::active(), nullptr);
  ScopedTraceSpan S("ignored");
  traceEvent("ignored");
  traceCounter("ignored");
  // Nothing to observe — the point is that this neither crashes nor
  // requires a trace to exist.
}

TEST(TraceTest, TextAndJsonRenderings) {
  Trace T;
  Trace *Prev = Trace::setActive(&T);
  {
    ScopedTraceSpan Outer("ipcp");
    traceEvent("ssa.proc", "main");
    ScopedTraceSpan Inner("propagate", "callgraph-worklist");
    traceCounter("visits", 3);
  }
  Trace::setActive(Prev);

  std::string Text = T.str();
  EXPECT_NE(Text.find("ipcp"), std::string::npos);
  EXPECT_NE(Text.find("propagate"), std::string::npos);
  EXPECT_NE(Text.find("ssa.proc"), std::string::npos);

  JsonValue J = T.toJson();
  ASSERT_TRUE(J.isObject());
  const JsonValue *Spans = J.find("spans");
  ASSERT_NE(Spans, nullptr);
  ASSERT_EQ(Spans->size(), 1u); // one root, child nested inside it
  const JsonValue *Children = Spans->at(0).find("children");
  ASSERT_NE(Children, nullptr);
  EXPECT_EQ(Children->at(0).find("name")->asString(), "propagate");
  EXPECT_EQ(J.find("counters")->find("visits")->asInt(), 3);
  // The trace JSON itself round-trips.
  auto Back = JsonValue::parse(J.dump(2));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, J);
}

//===----------------------------------------------------------------------===//
// The analysis report, end to end on a fixture program
//===----------------------------------------------------------------------===//

const char *FixtureSource = R"(
proc helper(x, scale) {
  print x * scale;
}
proc main() {
  call helper(4, 10);
  call helper(4, 10);
}
)";

TEST(ReportTest, EveryEmittedCounterIsRegistered) {
  auto M = lowerOk(FixtureSource);
  IPCPResult R = runIPCP(*M);
  for (const auto &[Name, Value] : R.Stats.counters())
    EXPECT_TRUE(isRegisteredCounter(Name))
        << "counter '" << Name
        << "' is emitted but missing from support/Counters.def";

  CompletePropagationResult CP = runCompletePropagation(*M);
  for (const auto &[Name, Value] : CP.Stats.counters())
    EXPECT_TRUE(isRegisteredCounter(Name))
        << "counter '" << Name
        << "' is emitted but missing from support/Counters.def";
}

TEST(ReportTest, GoldenReportParsesWithExpectedContents) {
  auto M = lowerOk(FixtureSource);
  IPCPOptions Opts;
  IPCPResult R = runIPCP(*M, Opts);

  Trace T;
  AnalysisReport Rep;
  Rep.SourceName = "fixture.mf";
  Rep.M = M.get();
  Rep.Opts = &Opts;
  Rep.Single = &R;
  Rep.TraceData = &T;
  JsonValue Doc = buildAnalysisReport(Rep);

  // The report must survive its own serialization.
  std::string Error;
  std::optional<JsonValue> Parsed = JsonValue::parse(Doc.dump(2), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(*Parsed, Doc);

  EXPECT_EQ(Parsed->find("schema")->asString(), "ipcp-report-v1");
  EXPECT_EQ(Parsed->find("source")->asString(), "fixture.mf");

  const JsonValue *Result = Parsed->find("result");
  ASSERT_NE(Result, nullptr);

  // helper is always entered with x=4, scale=10: both land in
  // CONSTANTS(helper) and both references substitute.
  const JsonValue *Procs = Result->find("procedures");
  ASSERT_NE(Procs, nullptr);
  const JsonValue *Helper = nullptr;
  for (size_t I = 0; I != Procs->size(); ++I)
    if (Procs->at(I).find("name")->asString() == "helper")
      Helper = &Procs->at(I);
  ASSERT_NE(Helper, nullptr);
  const JsonValue *Constants = Helper->find("constants");
  ASSERT_EQ(Constants->size(), 2u);
  bool SawX = false, SawScale = false;
  for (size_t I = 0; I != Constants->size(); ++I) {
    const JsonValue &C = Constants->at(I);
    if (C.find("variable")->asString() == "x") {
      SawX = true;
      EXPECT_EQ(C.find("value")->asInt(), 4);
    }
    if (C.find("variable")->asString() == "scale") {
      SawScale = true;
      EXPECT_EQ(C.find("value")->asInt(), 10);
    }
  }
  EXPECT_TRUE(SawX);
  EXPECT_TRUE(SawScale);
  EXPECT_EQ(Result->find("total_entry_constants")->asInt(), 2);

  // Stage timings exist for every stage and are internally consistent.
  const JsonValue *Timings = Result->find("timings_us");
  ASSERT_NE(Timings, nullptr);
  for (const char *Stage : {"callgraph", "modref", "intraprocedural",
                            "return_jf", "forward_jf", "propagation",
                            "record", "total"})
    ASSERT_NE(Timings->find(Stage), nullptr) << Stage;
  EXPECT_GE(Timings->find("total")->asInt(),
            Timings->find("propagation")->asInt());

  // Jump-function histogram totals match its parts.
  const JsonValue *JF = Result->find("jump_functions");
  ASSERT_NE(JF, nullptr);
  EXPECT_EQ(JF->find("total")->asInt(),
            JF->find("bottom")->asInt() + JF->find("constant")->asInt() +
                JF->find("pass_through")->asInt() +
                JF->find("polynomial")->asInt());

  // The empty-but-present trace serializes alongside the result.
  ASSERT_NE(Parsed->find("trace"), nullptr);
  // Options echo the configuration used.
  ASSERT_NE(Parsed->find("options"), nullptr);
}

TEST(ReportTest, CompletePropagationReportCarriesRounds) {
  auto M = lowerOk(FixtureSource);
  IPCPOptions Opts;
  CompletePropagationResult CP = runCompletePropagation(*M, Opts);

  AnalysisReport Rep;
  Rep.SourceName = "fixture.mf";
  Rep.M = M.get();
  Rep.Opts = &Opts;
  Rep.Complete = &CP;
  JsonValue Doc = buildAnalysisReport(Rep);

  const JsonValue *Complete = Doc.find("complete_propagation");
  ASSERT_NE(Complete, nullptr);
  EXPECT_GE(Complete->find("rounds")->asInt(), 1);
  ASSERT_NE(Complete->find("final_round"), nullptr);
  ASSERT_NE(Complete->find("counters"), nullptr);
  EXPECT_EQ(Complete->find("counters")->find("cp_rounds")->asInt(),
            int64_t(CP.Rounds));
}

} // namespace
