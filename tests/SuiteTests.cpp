//===- tests/SuiteTests.cpp - benchmark suite validation ------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Validates the twelve named benchmark programs and the relations the
// paper reports for their namesakes (see workload/Programs.h and
// EXPERIMENTS.md for the mapping).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "core/SuiteRunner.h"
#include "workload/Oracle.h"
#include "workload/Study.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

class SuitePrograms : public ::testing::TestWithParam<const char *> {
protected:
  const SuiteProgram &program() {
    const SuiteProgram *P = findSuiteProgram(GetParam());
    EXPECT_NE(P, nullptr);
    return *P;
  }
};

TEST_P(SuitePrograms, CompilesAndVerifies) {
  auto M = loadSuiteModule(program());
  expectVerifies(*M, VerifyMode::PreSSA);
}

TEST_P(SuitePrograms, ExecutesCleanly) {
  auto M = loadSuiteModule(program());
  ExecutionResult R = interpret(*M);
  EXPECT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_FALSE(R.Output.empty()) << "every program prints something";
}

TEST_P(SuitePrograms, SoundInAllMainConfigurations) {
  auto M = loadSuiteModule(program());
  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraproceduralConstant,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial}) {
    IPCPOptions Opts;
    Opts.ForwardKind = Kind;
    OracleReport Report = checkSoundness(*M, runIPCP(*M, Opts));
    EXPECT_TRUE(Report.Sound) << Report.str();
  }
  IPCPOptions NoMod;
  NoMod.UseModInformation = false;
  OracleReport Report = checkSoundness(*M, runIPCP(*M, NoMod));
  EXPECT_TRUE(Report.Sound) << Report.str();
}

TEST_P(SuitePrograms, PaperContainmentRelations) {
  const SuiteProgram &Prog = program();
  auto Refs = [&](JumpFunctionKind Kind, bool Ret) {
    IPCPOptions Opts;
    Opts.ForwardKind = Kind;
    Opts.UseReturnJumpFunctions = Ret;
    return runCell(Prog, Opts);
  };
  unsigned Literal = Refs(JumpFunctionKind::Literal, true);
  unsigned Intra = Refs(JumpFunctionKind::IntraproceduralConstant, true);
  unsigned Pass = Refs(JumpFunctionKind::PassThrough, true);
  unsigned Poly = Refs(JumpFunctionKind::Polynomial, true);
  EXPECT_LE(Literal, Intra);
  EXPECT_LE(Intra, Pass);
  EXPECT_LE(Pass, Poly);
  // The paper's headline: pass-through matches polynomial on the suite.
  EXPECT_EQ(Pass, Poly);
  // Return jump functions never hurt.
  EXPECT_GE(Poly, Refs(JumpFunctionKind::Polynomial, false));
}

TEST_P(SuitePrograms, FindsInterproceduralConstants) {
  IPCPResult R = runIPCP(*loadSuiteModule(program()));
  EXPECT_GT(R.TotalEntryConstants, 0u);
  EXPECT_GT(R.TotalConstantRefs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    All, SuitePrograms,
    ::testing::Values("adm", "doduc", "fpppp", "linpackd", "matrix300",
                      "mdg", "ocean", "qcd", "simple", "snasa7", "spec77",
                      "trfd"));

//===----------------------------------------------------------------------===//
// Per-program signature relations from the paper.
//===----------------------------------------------------------------------===//

unsigned refs(const char *Name, IPCPOptions Opts = {}) {
  return runCell(*findSuiteProgram(Name), Opts);
}

unsigned refsNoRet(const char *Name) {
  IPCPOptions Opts;
  Opts.UseReturnJumpFunctions = false;
  return refs(Name, Opts);
}

TEST(SuiteRelations, AdmAllClassesEqual) {
  IPCPOptions Lit;
  Lit.ForwardKind = JumpFunctionKind::Literal;
  EXPECT_EQ(refs("adm", Lit), refs("adm"))
      << "adm's constants are all literal actuals";
}

TEST(SuiteRelations, TrfdAllClassesEqual) {
  IPCPOptions Lit;
  Lit.ForwardKind = JumpFunctionKind::Literal;
  EXPECT_EQ(refs("trfd", Lit), refs("trfd"));
}

TEST(SuiteRelations, LinpackdLiteralFarBehind) {
  IPCPOptions Lit;
  Lit.ForwardKind = JumpFunctionKind::Literal;
  EXPECT_LT(2 * refs("linpackd", Lit), refs("linpackd"))
      << "driver-computed sizes are invisible to the literal class";
}

TEST(SuiteRelations, SnasaLiteralFarBehind) {
  IPCPOptions Lit;
  Lit.ForwardKind = JumpFunctionKind::Literal;
  EXPECT_LT(2 * refs("snasa7", Lit), refs("snasa7"));
}

TEST(SuiteRelations, OceanReturnJumpFunctionsDominant) {
  // Paper: "the return jump functions more than tripled the number of
  // constants" in ocean.
  unsigned With = refs("ocean");
  unsigned Without = refsNoRet("ocean");
  EXPECT_GE(With, 3 * Without + 1);
}

TEST(SuiteRelations, ReturnJumpFunctionsNoEffectInMostPrograms) {
  // Paper: no noticeable difference in ten of thirteen programs.
  unsigned Unaffected = 0;
  for (const char *Name : {"adm", "linpackd", "matrix300", "qcd", "simple",
                           "snasa7", "spec77", "trfd"})
    if (refs(Name) == refsNoRet(Name))
      ++Unaffected;
  EXPECT_GE(Unaffected, 7u);
}

TEST(SuiteRelations, DoducAndMdgGainAFewFromReturnJFs) {
  // Paper: "In doduc and mdg, return jump functions let the analyzer
  // find a few more constants."
  unsigned DoducDelta = refs("doduc") - refsNoRet("doduc");
  unsigned MdgDelta = refs("mdg") - refsNoRet("mdg");
  EXPECT_GE(DoducDelta, 1u);
  EXPECT_LE(DoducDelta, 6u);
  EXPECT_GE(MdgDelta, 1u);
  EXPECT_LE(MdgDelta, 6u);
}

TEST(SuiteRelations, ModInformationMattersBroadly) {
  // Paper Table 3: "In any program where constants were found, using MOD
  // information exposed additional constants. The numbers are
  // particularly striking in ... linpackd, matrix300, ocean, simple, and
  // spec77."
  IPCPOptions NoMod;
  NoMod.UseModInformation = false;
  for (const char *Name :
       {"linpackd", "matrix300", "ocean", "snasa7", "spec77"})
    EXPECT_LT(2 * refs(Name, NoMod), refs(Name)) << Name;
}

TEST(SuiteRelations, CompletePropagationHelpsOceanAndSpec77Only) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    auto M = loadSuiteModule(Prog);
    unsigned Single = runIPCP(*M).TotalConstantRefs;
    unsigned Complete = runCompletePropagation(*M).TotalConstantRefs;
    if (Prog.Name == "ocean" || Prog.Name == "spec77")
      EXPECT_GT(Complete, Single) << Prog.Name;
    else
      EXPECT_EQ(Complete, Single) << Prog.Name;
  }
}

TEST(SuiteRelations, IntraproceduralAlwaysBehindInterprocedural) {
  // Paper: "For programs that contained constants, the interprocedural
  // propagation always detected more constants than strictly
  // intraprocedural propagation."
  IPCPOptions Intra;
  Intra.IntraproceduralOnly = true;
  for (const SuiteProgram &Prog : benchmarkSuite())
    EXPECT_LT(runCell(Prog, Intra), runCell(Prog, IPCPOptions()))
        << Prog.Name;
}

//===----------------------------------------------------------------------===//
// Table plumbing.
//===----------------------------------------------------------------------===//

TEST(SuiteTables, Table1HasTwelveRowsWithSaneNumbers) {
  SuiteRunner Runner(4);
  std::vector<Table1Row> Rows = computeTable1(benchmarkSuite(), &Runner);
  ASSERT_EQ(Rows.size(), 12u);
  for (const Table1Row &Row : Rows) {
    EXPECT_GT(Row.Lines, 20u) << Row.Name;
    EXPECT_GE(Row.Procs, 3u) << Row.Name;
    EXPECT_GT(Row.CallSites, 2u) << Row.Name;
    EXPECT_GT(Row.MeanLinesPerProc, 0u) << Row.Name;
    EXPECT_GT(Row.MedianLinesPerProc, 0u) << Row.Name;
  }
}

TEST(SuiteTables, Table2MatchesDirectCells) {
  // Spot-check one row against runCell.
  std::vector<SuiteProgram> One = {*findSuiteProgram("ocean")};
  std::vector<Table2Row> Rows = computeTable2(One);
  ASSERT_EQ(Rows.size(), 1u);
  EXPECT_EQ(Rows[0].Polynomial, refs("ocean"));
  EXPECT_EQ(Rows[0].PolynomialNoRet, refsNoRet("ocean"));
  EXPECT_EQ(Rows[0].Polynomial, Rows[0].PassThrough);
}

TEST(SuiteTables, FormattingContainsAllPrograms) {
  std::vector<SuiteProgram> Two = {*findSuiteProgram("adm"),
                                   *findSuiteProgram("trfd")};
  std::string T1 = formatTable1(computeTable1(Two));
  std::string T2 = formatTable2(computeTable2(Two));
  std::string T3 = formatTable3(computeTable3(Two));
  for (const std::string &Text : {T1, T2, T3}) {
    EXPECT_NE(Text.find("adm"), std::string::npos);
    EXPECT_NE(Text.find("trfd"), std::string::npos);
  }
}

TEST(SuiteTables, ParallelTablesMatchSequential) {
  // The table computations route per-program work through a SuiteRunner;
  // the worker count must never change a row.
  SuiteRunner Parallel(4);
  std::vector<Table2Row> Seq = computeTable2(benchmarkSuite());
  std::vector<Table2Row> Par = computeTable2(benchmarkSuite(), &Parallel);
  ASSERT_EQ(Seq.size(), Par.size());
  for (size_t I = 0; I < Seq.size(); ++I) {
    EXPECT_EQ(Seq[I].Name, Par[I].Name);
    EXPECT_EQ(Seq[I].Literal, Par[I].Literal);
    EXPECT_EQ(Seq[I].Intraprocedural, Par[I].Intraprocedural);
    EXPECT_EQ(Seq[I].PassThrough, Par[I].PassThrough);
    EXPECT_EQ(Seq[I].Polynomial, Par[I].Polynomial);
    EXPECT_EQ(Seq[I].PolynomialNoRet, Par[I].PolynomialNoRet);
  }
}

TEST(SuiteTables, LineCounterSkipsBlanksAndComments) {
  EXPECT_EQ(countCodeLines("// comment\n\n  \nproc main() { }\n"), 1u);
  EXPECT_EQ(countCodeLines("a\n// b\nc\n"), 2u);
  EXPECT_EQ(countCodeLines(""), 0u);
}

} // namespace
