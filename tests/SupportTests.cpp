//===- tests/SupportTests.cpp - support library tests ---------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/Casting.h"
#include "support/ConstantMath.h"
#include "support/Diagnostics.h"
#include "support/Statistics.h"
#include "support/StringInterner.h"
#include "support/ThreadPool.h"
#include "support/Worklist.h"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>

using namespace ipcp;

namespace {

//===----------------------------------------------------------------------===//
// Casting
//===----------------------------------------------------------------------===//

struct Shape {
  enum class Kind { Circle, Square };
  explicit Shape(Kind K) : TheKind(K) {}
  Kind getKind() const { return TheKind; }

private:
  Kind TheKind;
};

struct Circle : Shape {
  Circle() : Shape(Kind::Circle) {}
  static bool classof(const Shape *S) { return S->getKind() == Kind::Circle; }
};

struct Square : Shape {
  Square() : Shape(Kind::Square) {}
  static bool classof(const Shape *S) { return S->getKind() == Kind::Square; }
};

TEST(Casting, IsaAndCast) {
  Circle C;
  Shape *S = &C;
  EXPECT_TRUE(isa<Circle>(S));
  EXPECT_FALSE(isa<Square>(S));
  EXPECT_EQ(cast<Circle>(S), &C);
}

TEST(Casting, VariadicIsa) {
  Square Sq;
  Shape *S = &Sq;
  bool Matches = isa<Circle, Square>(S);
  EXPECT_TRUE(Matches);
}

TEST(Casting, DynCast) {
  Square Sq;
  Shape *S = &Sq;
  EXPECT_EQ(dyn_cast<Circle>(S), nullptr);
  EXPECT_EQ(dyn_cast<Square>(S), &Sq);
}

TEST(Casting, NullTolerantVariants) {
  Shape *Null = nullptr;
  EXPECT_FALSE(isa_and_nonnull<Circle>(Null));
  EXPECT_EQ(dyn_cast_or_null<Circle>(Null), nullptr);
  Circle C;
  Shape *S = &C;
  EXPECT_TRUE(isa_and_nonnull<Circle>(S));
  EXPECT_EQ(dyn_cast_or_null<Circle>(S), &C);
}

TEST(Casting, ConstOverloads) {
  const Circle C;
  const Shape *S = &C;
  EXPECT_EQ(cast<Circle>(S), &C);
  EXPECT_EQ(dyn_cast<Square>(S), nullptr);
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(StringInterner, SameContentSameHandle) {
  StringInterner Interner;
  const std::string *A = Interner.intern("hello");
  const std::string *B = Interner.intern(std::string("hel") + "lo");
  EXPECT_EQ(A, B);
  EXPECT_EQ(*A, "hello");
  EXPECT_EQ(Interner.size(), 1u);
}

TEST(StringInterner, DistinctContentDistinctHandle) {
  StringInterner Interner;
  EXPECT_NE(Interner.intern("a"), Interner.intern("b"));
  EXPECT_EQ(Interner.size(), 2u);
}

TEST(StringInterner, HandlesStayValidAcrossGrowth) {
  StringInterner Interner;
  const std::string *First = Interner.intern("first");
  for (int I = 0; I != 1000; ++I)
    Interner.intern("filler" + std::to_string(I));
  EXPECT_EQ(First, Interner.intern("first"));
  EXPECT_EQ(*First, "first");
}

//===----------------------------------------------------------------------===//
// ConstantMath
//===----------------------------------------------------------------------===//

constexpr ConstantValue IntMax = std::numeric_limits<ConstantValue>::max();
constexpr ConstantValue IntMin = std::numeric_limits<ConstantValue>::min();

TEST(ConstantMath, BasicFolds) {
  EXPECT_EQ(foldBinary(BinaryOp::Add, 2, 3), 5);
  EXPECT_EQ(foldBinary(BinaryOp::Sub, 2, 3), -1);
  EXPECT_EQ(foldBinary(BinaryOp::Mul, -4, 3), -12);
  EXPECT_EQ(foldBinary(BinaryOp::Div, 7, 2), 3);
  EXPECT_EQ(foldBinary(BinaryOp::Div, -7, 2), -3) << "truncating division";
  EXPECT_EQ(foldBinary(BinaryOp::Mod, 7, 3), 1);
  EXPECT_EQ(foldBinary(BinaryOp::Mod, -7, 3), -1) << "C++ remainder sign";
}

TEST(ConstantMath, Comparisons) {
  EXPECT_EQ(foldBinary(BinaryOp::CmpEq, 3, 3), 1);
  EXPECT_EQ(foldBinary(BinaryOp::CmpNe, 3, 3), 0);
  EXPECT_EQ(foldBinary(BinaryOp::CmpLt, 2, 3), 1);
  EXPECT_EQ(foldBinary(BinaryOp::CmpLe, 3, 3), 1);
  EXPECT_EQ(foldBinary(BinaryOp::CmpGt, 2, 3), 0);
  EXPECT_EQ(foldBinary(BinaryOp::CmpGe, 2, 3), 0);
}

TEST(ConstantMath, AddOverflowDeclines) {
  EXPECT_EQ(checkedAdd(IntMax, 1), std::nullopt);
  EXPECT_EQ(checkedAdd(IntMin, -1), std::nullopt);
  EXPECT_EQ(checkedAdd(IntMax, 0), IntMax);
}

TEST(ConstantMath, SubOverflowDeclines) {
  EXPECT_EQ(checkedSub(IntMin, 1), std::nullopt);
  EXPECT_EQ(checkedSub(0, IntMin), std::nullopt);
}

TEST(ConstantMath, MulOverflowDeclines) {
  EXPECT_EQ(checkedMul(IntMax, 2), std::nullopt);
  EXPECT_EQ(checkedMul(IntMin, -1), std::nullopt);
  EXPECT_EQ(checkedMul(IntMax, 1), IntMax);
}

TEST(ConstantMath, DivisionEdgeCases) {
  EXPECT_EQ(checkedDiv(5, 0), std::nullopt);
  EXPECT_EQ(checkedDiv(IntMin, -1), std::nullopt);
  EXPECT_EQ(checkedRem(5, 0), std::nullopt);
  EXPECT_EQ(checkedRem(IntMin, -1), std::nullopt);
  EXPECT_EQ(checkedDiv(IntMin, 1), IntMin);
}

TEST(ConstantMath, NegationEdgeCases) {
  EXPECT_EQ(checkedNeg(IntMin), std::nullopt);
  EXPECT_EQ(checkedNeg(IntMax), -IntMax);
  EXPECT_EQ(foldUnary(UnaryOp::Neg, 5), -5);
  EXPECT_EQ(foldUnary(UnaryOp::Not, 0), 1);
  EXPECT_EQ(foldUnary(UnaryOp::Not, 7), 0);
}

TEST(ConstantMath, OpPredicates) {
  EXPECT_TRUE(isCommutativeOp(BinaryOp::Add));
  EXPECT_TRUE(isCommutativeOp(BinaryOp::Mul));
  EXPECT_TRUE(isCommutativeOp(BinaryOp::CmpEq));
  EXPECT_FALSE(isCommutativeOp(BinaryOp::Sub));
  EXPECT_FALSE(isCommutativeOp(BinaryOp::CmpLt));
  EXPECT_TRUE(isComparisonOp(BinaryOp::CmpGe));
  EXPECT_FALSE(isComparisonOp(BinaryOp::Mod));
}

/// Folding must agree with native arithmetic wherever it succeeds.
class FoldSweep : public ::testing::TestWithParam<int> {};

TEST_P(FoldSweep, MatchesNativeArithmetic) {
  // Small deterministic operand grid derived from the parameter.
  int64_t Seed = GetParam();
  int64_t Values[] = {0, 1, -1, 2, Seed, -Seed, Seed * 37, 1000 - Seed};
  for (int64_t L : Values)
    for (int64_t R : Values) {
      EXPECT_EQ(foldBinary(BinaryOp::Add, L, R), L + R);
      EXPECT_EQ(foldBinary(BinaryOp::Sub, L, R), L - R);
      EXPECT_EQ(foldBinary(BinaryOp::Mul, L, R), L * R);
      if (R != 0) {
        EXPECT_EQ(foldBinary(BinaryOp::Div, L, R), L / R);
        EXPECT_EQ(foldBinary(BinaryOp::Mod, L, R), L % R);
      }
    }
}

INSTANTIATE_TEST_SUITE_P(SmallOperands, FoldSweep,
                         ::testing::Values(3, 7, 11, 25, 99, 123, 1024));

//===----------------------------------------------------------------------===//
// Worklist
//===----------------------------------------------------------------------===//

TEST(Worklist, FifoOrder) {
  Worklist<int> W;
  EXPECT_TRUE(W.insert(1));
  EXPECT_TRUE(W.insert(2));
  EXPECT_TRUE(W.insert(3));
  EXPECT_EQ(W.pop(), 1);
  EXPECT_EQ(W.pop(), 2);
  EXPECT_EQ(W.pop(), 3);
  EXPECT_TRUE(W.empty());
}

TEST(Worklist, DeduplicatesPendingItems) {
  Worklist<int> W;
  EXPECT_TRUE(W.insert(5));
  EXPECT_FALSE(W.insert(5));
  EXPECT_EQ(W.size(), 1u);
  EXPECT_EQ(W.pop(), 5);
  // After popping, re-insertion is allowed.
  EXPECT_TRUE(W.insert(5));
}

TEST(Worklist, InterleavedInsertPop) {
  Worklist<int> W;
  W.insert(1);
  W.insert(2);
  EXPECT_EQ(W.pop(), 1);
  W.insert(3);
  W.insert(1);
  EXPECT_EQ(W.pop(), 2);
  EXPECT_EQ(W.pop(), 3);
  EXPECT_EQ(W.pop(), 1);
}

TEST(Worklist, ClearDropsPendingItems) {
  Worklist<int> W;
  W.reserve(8);
  W.insert(1);
  W.insert(2);
  W.clear();
  EXPECT_TRUE(W.empty());
  EXPECT_EQ(W.size(), 0u);
  // Cleared items are re-insertable.
  EXPECT_TRUE(W.insert(1));
  EXPECT_EQ(W.pop(), 1);
}

//===----------------------------------------------------------------------===//
// IndexWorklist
//===----------------------------------------------------------------------===//

TEST(IndexWorklist, FifoOrderAndDeduplication) {
  IndexWorklist W;
  W.reserve(10);
  EXPECT_TRUE(W.insert(3));
  EXPECT_TRUE(W.insert(7));
  EXPECT_FALSE(W.insert(3)) << "pending keys deduplicate";
  EXPECT_EQ(W.size(), 2u);
  EXPECT_EQ(W.pop(), 3u);
  EXPECT_TRUE(W.insert(3)) << "popped keys are re-insertable";
  EXPECT_EQ(W.pop(), 7u);
  EXPECT_EQ(W.pop(), 3u);
  EXPECT_TRUE(W.empty());
}

TEST(IndexWorklist, ClearBumpsGeneration) {
  IndexWorklist W;
  W.reserve(4);
  W.insert(0);
  W.insert(1);
  W.clear();
  EXPECT_TRUE(W.empty());
  // Every key insertable again after the O(1) clear, including ones that
  // were pending when it happened.
  EXPECT_TRUE(W.insert(1));
  EXPECT_TRUE(W.insert(0));
  EXPECT_FALSE(W.insert(1));
  EXPECT_EQ(W.pop(), 1u);
  EXPECT_EQ(W.pop(), 0u);
}

TEST(IndexWorklist, ReserveGrowsTheUniverse) {
  IndexWorklist W;
  W.reserve(2);
  W.insert(1);
  W.reserve(100);
  EXPECT_TRUE(W.insert(99));
  EXPECT_EQ(W.pop(), 1u);
  EXPECT_EQ(W.pop(), 99u);
}

TEST(IndexWorklist, ManyGenerationsStayCorrect) {
  IndexWorklist W;
  W.reserve(3);
  for (int Round = 0; Round != 50; ++Round) {
    EXPECT_TRUE(W.insert(Round % 3));
    EXPECT_FALSE(W.insert(Round % 3));
    W.clear();
    EXPECT_TRUE(W.empty());
  }
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
  std::atomic<int> Counter{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Counter] { ++Counter; });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossPhases) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  for (int Phase = 0; Phase != 3; ++Phase) {
    for (int I = 0; I != 10; ++I)
      Pool.submit([&Counter] { ++Counter; });
    Pool.wait();
    EXPECT_EQ(Counter.load(), 10 * (Phase + 1));
  }
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I != 20; ++I)
      Pool.submit([&Counter] { ++Counter; });
  }
  EXPECT_EQ(Counter.load(), 20);
}

TEST(ThreadPool, ZeroThreadCountClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threadCount(), 1u);
  EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticsEngine Diags;
  Diags.warning(SourceLoc(1, 2), "a warning");
  Diags.note(SourceLoc(), "a note");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error(SourceLoc(3, 4), "an error");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, Rendering) {
  DiagnosticsEngine Diags;
  Diags.error(SourceLoc(3, 4), "bad thing");
  Diags.note(SourceLoc(), "context");
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("3:4: error: bad thing"), std::string::npos);
  EXPECT_NE(Text.find("note: context"), std::string::npos);
  // An invalid location prints no position prefix.
  EXPECT_EQ(Text.find("<unknown>: note"), std::string::npos);
}

TEST(Diagnostics, Clear) {
  DiagnosticsEngine Diags;
  Diags.error(SourceLoc(1, 1), "x");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(SourceLocTest, Validity) {
  EXPECT_FALSE(SourceLoc().isValid());
  EXPECT_TRUE(SourceLoc(1, 1).isValid());
  EXPECT_EQ(SourceLoc(2, 7).str(), "2:7");
  EXPECT_EQ(SourceLoc().str(), "<unknown>");
  EXPECT_EQ(SourceLoc(1, 2), SourceLoc(1, 2));
  EXPECT_NE(SourceLoc(1, 2), SourceLoc(1, 3));
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(Statistics, CountersAccumulate) {
  StatisticSet Stats;
  EXPECT_EQ(Stats.get("x"), 0u);
  Stats.add("x");
  Stats.add("x", 4);
  EXPECT_EQ(Stats.get("x"), 5u);
}

TEST(Statistics, Merge) {
  StatisticSet A, B;
  A.add("shared", 1);
  B.add("shared", 2);
  B.add("own", 3);
  A.merge(B);
  EXPECT_EQ(A.get("shared"), 3u);
  EXPECT_EQ(A.get("own"), 3u);
}

TEST(Statistics, RenderSortedByName) {
  StatisticSet Stats;
  Stats.add("zeta", 1);
  Stats.add("alpha", 2);
  std::string Text = Stats.str();
  EXPECT_LT(Text.find("alpha = 2"), Text.find("zeta = 1"));
}

TEST(TimerTest, MeasuresForwardTime) {
  Timer T;
  EXPECT_GE(T.seconds(), 0.0);
  T.restart();
  EXPECT_GE(T.seconds(), 0.0);
}

} // namespace
