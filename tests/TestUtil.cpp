//===- tests/TestUtil.cpp -------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace ipcp;

Program ipcp::test::parseOk(const std::string &Source, bool RequireMain) {
  DiagnosticsEngine Diags;
  std::optional<Program> Prog = parseAndCheck(Source, Diags, RequireMain);
  EXPECT_TRUE(Prog.has_value()) << "unexpected diagnostics:\n" << Diags.str();
  if (!Prog)
    return Program();
  return std::move(*Prog);
}

std::string ipcp::test::parseErrors(const std::string &Source,
                                    bool RequireMain) {
  DiagnosticsEngine Diags;
  std::optional<Program> Prog = parseAndCheck(Source, Diags, RequireMain);
  EXPECT_FALSE(Prog.has_value()) << "expected diagnostics, got none";
  return Diags.str();
}

std::unique_ptr<Module> ipcp::test::lowerOk(const std::string &Source,
                                            bool RequireMain) {
  Program Prog = parseOk(Source, RequireMain);
  std::unique_ptr<Module> M = lowerProgram(Prog);
  expectVerifies(*M, VerifyMode::PreSSA);
  return M;
}

Procedure *ipcp::test::getProc(Module &M, const std::string &Name) {
  Procedure *P = M.findProcedure(Name);
  EXPECT_NE(P, nullptr) << "missing procedure " << Name;
  return P;
}

void ipcp::test::expectVerifies(const Module &M, VerifyMode Mode) {
  std::vector<std::string> Errors = verifyModule(M, Mode);
  for (const std::string &E : Errors)
    ADD_FAILURE() << E;
}
