//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#ifndef IPCP_TESTS_TESTUTIL_H
#define IPCP_TESTS_TESTUTIL_H

#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "ir/Module.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ipcp {
namespace test {

/// Parses and checks \p Source; fails the current test on any diagnostic.
Program parseOk(const std::string &Source, bool RequireMain = true);

/// Parses \p Source expecting at least one error; returns the rendered
/// diagnostics for substring assertions.
std::string parseErrors(const std::string &Source, bool RequireMain = true);

/// Parses, checks, lowers, and pre-SSA-verifies \p Source.
std::unique_ptr<Module> lowerOk(const std::string &Source,
                                bool RequireMain = true);

/// Finds a procedure or aborts the test.
Procedure *getProc(Module &M, const std::string &Name);

/// Finds the first instruction of kind T in \p P; null if absent.
template <typename T> T *firstInst(Procedure &P) {
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (auto *Match = dyn_cast<T>(Inst.get()))
        return Match;
  return nullptr;
}

/// Counts instructions of kind T in \p P.
template <typename T> unsigned countInsts(Procedure &P) {
  unsigned Count = 0;
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (isa<T>(Inst.get()))
        ++Count;
  return Count;
}

/// Expects a clean verifier result; reports all violations otherwise.
void expectVerifies(const Module &M, VerifyMode Mode);

} // namespace test
} // namespace ipcp

#endif // IPCP_TESTS_TESTUTIL_H
