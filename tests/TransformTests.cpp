//===- tests/TransformTests.cpp - transform pipeline invariants -----------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The transform pipeline's contract (docs/TRANSFORMS.md), enforced
// mechanically:
//
//  1. behavior preservation: original and optimized modules interpret
//     to the same output and termination status — over the example
//     corpus, the 12-program suite, and ~100 generated programs;
//  2. the optimized module verifies in pre-SSA form and never takes
//     more interpreter steps than the original;
//  3. idempotence: optimizing an already-optimized module is a no-op;
//  4. the copyprop pass forwards across calls exactly when MOD
//     information proves the call harmless;
//  5. the opt_* counters agree with the OptimizationResult fields;
//  6. a resource-budget trip degrades the run but stays sound.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "support/FileIO.h"
#include "transform/Transform.h"
#include "workload/Generator.h"
#include "workload/Programs.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

using namespace ipcp;
using namespace ipcp::test;

namespace {

/// Optimizes \p M in place and checks the full behavioral contract
/// against the pre-recorded \p Before execution.
OptimizationResult expectOptimizedEquivalent(Module &M,
                                             const ExecutionResult &Before,
                                             const ExecutionOptions &Exec,
                                             const std::string &Label,
                                             const IPCPOptions &Opts = {}) {
  OptimizationResult Result = optimizeModule(M, Opts);
  expectVerifies(M, VerifyMode::PreSSA);

  ExecutionResult After = interpret(M, Exec);
  if (Before.ok()) {
    EXPECT_EQ(After.TheStatus, Before.TheStatus) << Label;
    EXPECT_EQ(After.Output, Before.Output)
        << Label << ": optimization must not change observable behavior";
    EXPECT_LE(After.Steps, Before.Steps)
        << Label << ": optimization must never execute more instructions";
  } else {
    // A trapping or out-of-fuel run may produce fewer outputs once dead
    // (including trapping-dead) code is gone; the prefix must agree.
    size_t Common = std::min(Before.Output.size(), After.Output.size());
    for (size_t I = 0; I != Common; ++I)
      EXPECT_EQ(After.Output[I], Before.Output[I]) << Label << " output " << I;
  }
  return Result;
}

ExecutionOptions testExecOptions(uint64_t Seed) {
  ExecutionOptions Exec;
  Exec.MaxSteps = 2'000'000;
  Exec.InputSeed = Seed;
  Exec.RecordEntrySnapshots = false;
  return Exec;
}

//===----------------------------------------------------------------------===//
// Differential equivalence: examples, suite, generated corpus
//===----------------------------------------------------------------------===//

TEST(TransformDifferential, ExamplePrograms) {
  unsigned Checked = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(IPCP_EXAMPLES_DIR)) {
    if (Entry.path().extension() != ".mf")
      continue;
    std::string Source, Error;
    ASSERT_TRUE(readFileToString(Entry.path().string(), Source, &Error))
        << Error;
    DiagnosticsEngine Diags;
    std::optional<Program> Prog = parseAndCheck(Source, Diags);
    if (!Prog)
      continue; // e.g. bad_syntax.mf — frontend rejection is its own test
    std::unique_ptr<Module> M = lowerProgram(*Prog);
    ExecutionOptions Exec = testExecOptions(7);
    ExecutionResult Before = interpret(*M, Exec);
    expectOptimizedEquivalent(*M, Before, Exec,
                              Entry.path().filename().string());
    ++Checked;
  }
  EXPECT_GE(Checked, 3u) << "examples/programs/ lost its corpus";
}

TEST(TransformDifferential, SuitePrograms) {
  unsigned TotalSubstitutions = 0, TotalBranches = 0, TotalCopies = 0;
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    std::unique_ptr<Module> M = loadSuiteModule(Prog);
    ExecutionOptions Exec = testExecOptions(11);
    ExecutionResult Before = interpret(*M, Exec);
    OptimizationResult R =
        expectOptimizedEquivalent(*M, Before, Exec, Prog.Name);
    TotalSubstitutions += R.Substitutions;
    TotalBranches += R.BranchesResolved;
    TotalCopies += R.CopiesPropagated;
  }
  // The pipeline must keep doing real work on the paper's suite: the
  // bench acceptance floor (bench/bench_optimize.cpp), enforced here
  // too so a silent pipeline regression fails the fast tests.
  EXPECT_GE(TotalSubstitutions, 10u);
  EXPECT_GE(TotalBranches, 1u);
  EXPECT_GE(TotalCopies, 1u);
}

// ~100 generated programs across the generator's shape axes (the same
// sweep the incremental differential layer uses).
TEST(TransformDifferential, GeneratedPrograms) {
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumProcs = 3 + unsigned(Seed % 5);
    Config.StmtsPerProc = 6;
    Config.AllowRecursion = Seed % 4 == 0;
    Config.UseArrays = Seed % 3 != 0;
    Config.UseWhileLoops = Seed % 2 == 0;
    std::unique_ptr<Module> M = lowerOk(generateProgram(Config));
    ExecutionOptions Exec = testExecOptions(Seed);
    ExecutionResult Before = interpret(*M, Exec);
    expectOptimizedEquivalent(*M, Before, Exec,
                              "seed " + std::to_string(Seed));
  }
}

// Every analysis configuration must produce a sound rewrite, not just
// the default one: sweep the paper's ablation axes on a few seeds.
TEST(TransformDifferential, EveryConfiguration) {
  for (uint64_t Seed : {3u, 7u, 12u}) {
    for (JumpFunctionKind Kind :
         {JumpFunctionKind::Literal, JumpFunctionKind::Polynomial})
      for (bool Mod : {false, true}) {
        GeneratorConfig Config;
        Config.Seed = Seed;
        Config.NumProcs = 5;
        std::unique_ptr<Module> M = lowerOk(generateProgram(Config));
        ExecutionOptions Exec = testExecOptions(Seed);
        ExecutionResult Before = interpret(*M, Exec);
        IPCPOptions Opts;
        Opts.ForwardKind = Kind;
        Opts.UseModInformation = Mod;
        expectOptimizedEquivalent(*M, Before, Exec,
                                  "seed " + std::to_string(Seed) + " kind " +
                                      jumpFunctionKindName(Kind) + " mod " +
                                      std::to_string(Mod),
                                  Opts);
      }
  }
}

//===----------------------------------------------------------------------===//
// Idempotence: the pipeline reaches a fixpoint
//===----------------------------------------------------------------------===//

TEST(TransformPipeline, IdempotentOnSuite) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    std::unique_ptr<Module> M = loadSuiteModule(Prog);
    optimizeModule(*M);
    std::string Once = printModule(*M);
    OptimizationResult Again = optimizeModule(*M);
    EXPECT_FALSE(Again.changedAnything())
        << Prog.Name << ": optimizing an optimized module must be a no-op";
    EXPECT_EQ(printModule(*M), Once) << Prog.Name;
  }
}

//===----------------------------------------------------------------------===//
// Pass behavior
//===----------------------------------------------------------------------===//

// Only MOD information lets a stored global survive a call to a
// procedure that provably writes something else (docs/TRANSFORMS.md).
TEST(TransformPipeline, CopyPropagationUsesModInformation) {
  const char *Source = R"(
    global g, h;
    proc bump() { g = g + 1; }
    proc main() {
      var i, y, acc;
      acc = 0;
      do i = 1, 10 {
        h = i * i;
        call bump();
        y = h + g;
        acc = acc + y;
      }
      print acc;
    }
  )";

  auto forwarded = [&](bool UseMod) {
    std::unique_ptr<Module> M = lowerOk(Source);
    CallGraph CG(*M);
    ModRefInfo MRI =
        UseMod ? ModRefInfo::compute(*M, CG) : ModRefInfo::worstCase(*M);
    unsigned N = propagateCopies(*M, MRI);
    expectVerifies(*M, VerifyMode::PreSSA);
    return N;
  };

  // With MOD: the reload of h forwards across the call (bump writes
  // only g) and the reload of y forwards within the block. Without:
  // the call kills every global, leaving only the y forward.
  EXPECT_EQ(forwarded(true), 2u);
  EXPECT_EQ(forwarded(false), 1u);
}

TEST(TransformPipeline, PassSelectionIsHonored) {
  const char *Source = R"(
    proc main() {
      var n, x;
      n = 21;
      x = n + n;
      print x;
    }
  )";

  std::unique_ptr<Module> M = lowerOk(Source);
  TransformPassConfig OnlyCopyprop;
  OnlyCopyprop.ConstantSubstitution = false;
  OptimizationResult R = optimizeModule(*M, {}, OnlyCopyprop);
  EXPECT_EQ(R.Rounds, 0u);
  EXPECT_EQ(R.Substitutions, 0u);
  EXPECT_GT(R.CopiesPropagated, 0u);

  std::unique_ptr<Module> M2 = lowerOk(Source);
  TransformPassConfig OnlyConstants;
  OnlyConstants.CopyPropagation = false;
  OptimizationResult R2 = optimizeModule(*M2, {}, OnlyConstants);
  EXPECT_GT(R2.Substitutions, 0u);
  EXPECT_EQ(R2.CopiesPropagated, 0u);
}

TEST(TransformPipeline, ParsePassSpec) {
  TransformPassConfig Config;
  std::string Error;
  EXPECT_TRUE(parsePassSpec("constants", Config, &Error));
  EXPECT_TRUE(Config.ConstantSubstitution);
  EXPECT_FALSE(Config.CopyPropagation);

  EXPECT_TRUE(parsePassSpec("copyprop,constants", Config, &Error));
  EXPECT_TRUE(Config.ConstantSubstitution);
  EXPECT_TRUE(Config.CopyPropagation);

  EXPECT_FALSE(parsePassSpec("constants,typo", Config, &Error));
  EXPECT_NE(Error.find("unknown optimization pass 'typo'"),
            std::string::npos);
  EXPECT_FALSE(parsePassSpec("", Config, &Error));
}

TEST(TransformPipeline, CountersMatchResultFields) {
  std::unique_ptr<Module> M = loadSuiteModule(*findSuiteProgram("simple"));
  OptimizationResult R = optimizeModule(*M);
  EXPECT_EQ(R.Stats.get("opt_rounds"), R.Rounds);
  EXPECT_EQ(R.Stats.get("opt_substitutions"), R.Substitutions);
  EXPECT_EQ(R.Stats.get("opt_folds"), R.Folds);
  EXPECT_EQ(R.Stats.get("opt_branches_resolved"), R.BranchesResolved);
  EXPECT_EQ(R.Stats.get("opt_blocks_removed"), R.BlocksRemoved);
  EXPECT_EQ(R.Stats.get("opt_insts_removed"), R.InstsRemoved);
  EXPECT_EQ(R.Stats.get("opt_copies_propagated"), R.CopiesPropagated);
  EXPECT_EQ(R.InstructionsBefore - R.InstsRemoved, R.InstructionsAfter);
  ASSERT_EQ(R.PassTimings.size(), 2u);
  EXPECT_EQ(R.PassTimings[0].Pass, "constants");
  EXPECT_EQ(R.PassTimings[1].Pass, "copyprop");
}

//===----------------------------------------------------------------------===//
// Degradation: a tripped budget cuts the pipeline short, soundly
//===----------------------------------------------------------------------===//

TEST(TransformPipeline, DegradedRunStaysSound) {
  std::unique_ptr<Module> M = loadSuiteModule(*findSuiteProgram("simple"));
  ExecutionOptions Exec = testExecOptions(5);
  ExecutionResult Before = interpret(*M, Exec);

  IPCPOptions Opts;
  Opts.Limits.MaxPropagationEvals = 1; // trips inside the first round
  OptimizationResult R = optimizeModule(*M, Opts);
  EXPECT_TRUE(R.Status.Degraded);
  expectVerifies(*M, VerifyMode::PreSSA);

  ExecutionResult After = interpret(*M, Exec);
  ASSERT_TRUE(Before.ok());
  EXPECT_EQ(After.TheStatus, Before.TheStatus);
  EXPECT_EQ(After.Output, Before.Output)
      << "facts applied before the trip must still be sound";
}

} // namespace
