# Driver-level cache corruption check (invoked by the ctest target
# driver_corrupt_cache, see tests/CMakeLists.txt):
#
#   cmake -DDRIVER=<ipcp_driver> -DSRCDIR=<repo root>
#         -DSOURCE=<relative .mf> -DWORKDIR=<scratch dir>
#         -P RunCorruptCache.cmake
#
# Populates a cache directory, truncates the cache file behind the
# driver's back, and reruns: the driver must still exit 0 and write a
# report (the run degrades to cold — docs/INCREMENTAL.md). Result
# equivalence under corruption is covered byte-for-byte by the unit
# tests and the fuzzer; this test pins the end-to-end exit behavior.

file(REMOVE_RECURSE ${WORKDIR})

execute_process(
  COMMAND ${DRIVER} ${SOURCE} --cache-dir=${WORKDIR}
  WORKING_DIRECTORY ${SRCDIR}
  RESULT_VARIABLE RC
  OUTPUT_QUIET)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "populating run failed (exit ${RC})")
endif()

file(GLOB CACHE_FILES ${WORKDIR}/*.json)
list(LENGTH CACHE_FILES N)
if(NOT N EQUAL 1)
  message(FATAL_ERROR "expected exactly one cache file in ${WORKDIR}, "
                      "found ${N}")
endif()
list(GET CACHE_FILES 0 CACHE_FILE)
file(READ ${CACHE_FILE} TEXT)
string(LENGTH "${TEXT}" LEN)
math(EXPR HALF "${LEN} / 2")
string(SUBSTRING "${TEXT}" 0 ${HALF} TRUNCATED)
file(WRITE ${CACHE_FILE} "${TRUNCATED}")

execute_process(
  COMMAND ${DRIVER} ${SOURCE} --cache-dir=${WORKDIR}
          --report-json=${WORKDIR}/report.json
  WORKING_DIRECTORY ${SRCDIR}
  RESULT_VARIABLE RC
  OUTPUT_QUIET)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "run with a corrupted cache failed (exit ${RC}); "
                      "it must degrade to a cold run")
endif()
if(NOT EXISTS ${WORKDIR}/report.json)
  message(FATAL_ERROR "corrupted-cache run wrote no report")
endif()
