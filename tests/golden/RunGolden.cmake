# Golden-report diff driver (invoked per program by ctest, see
# tests/CMakeLists.txt):
#
#   cmake -DDRIVER=<ipcp_driver> -DSRCDIR=<repo root> -DSOURCE=<relative .mf>
#         -DOUT=<scratch json> -DGOLDEN=<tests/golden/<name>.json>
#         [-DUPDATE=1] -P RunGolden.cmake
#
# Runs the driver from the repo root (so the report's source_name field
# stays machine-independent) with --scrub-timings, then byte-compares
# the report against the checked-in golden file. With -DUPDATE=1 the
# golden file is rewritten instead — that is what the `update-golden`
# build target does after an intentional output change.

execute_process(
  COMMAND ${DRIVER} ${SOURCE} --report-json=${OUT} --scrub-timings
  WORKING_DIRECTORY ${SRCDIR}
  RESULT_VARIABLE RC
  OUTPUT_QUIET)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "ipcp_driver failed (exit ${RC}) on ${SOURCE}")
endif()

if(UPDATE)
  configure_file(${OUT} ${GOLDEN} COPYONLY)
  message(STATUS "updated ${GOLDEN}")
  return()
endif()

if(NOT EXISTS ${GOLDEN})
  message(FATAL_ERROR "missing golden file ${GOLDEN}; build the "
                      "`update-golden` target to create it")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR "report for ${SOURCE} differs from ${GOLDEN}; "
                      "inspect ${OUT}, and build the `update-golden` "
                      "target if the change is intentional")
endif()
