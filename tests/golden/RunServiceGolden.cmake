# Golden service-transcript diff driver (see tests/CMakeLists.txt):
#
#   cmake -DSERVERD=<ipcp_serverd> -DSRCDIR=<repo root>
#         -DREQUESTS=<tests/golden/service_transcript.requests>
#         -DOUT=<scratch responses> -DGOLDEN=<tests/golden/..._responses>
#         [-DUPDATE=1] -P RunServiceGolden.cmake
#
# Replays the checked-in request transcript through ipcp_serverd on
# stdin (single worker, scrubbed timings, so every byte of the response
# stream is deterministic) and byte-compares the response stream against
# the checked-in golden. The transcript exercises a cold/warm session
# pair, a batch with an embedded error item, an optimize pair (full
# pipeline and a narrowed "passes" list) plus the optimize+session
# rejection, a bad-request rejection, a bad-json rejection, and all
# three control ops; the daemon must exit 0 via the trailing shutdown
# request. With -DUPDATE=1 the golden is
# rewritten instead — the `update-golden` build target does that after
# an intentional wire-format change.

execute_process(
  COMMAND ${SERVERD} --jobs=1 --scrub-timings
  WORKING_DIRECTORY ${SRCDIR}
  INPUT_FILE ${REQUESTS}
  OUTPUT_FILE ${OUT}
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "ipcp_serverd failed (exit ${RC}) on ${REQUESTS}")
endif()

if(UPDATE)
  configure_file(${OUT} ${GOLDEN} COPYONLY)
  message(STATUS "updated ${GOLDEN}")
  return()
endif()

if(NOT EXISTS ${GOLDEN})
  message(FATAL_ERROR "missing golden file ${GOLDEN}; build the "
                      "`update-golden` target to create it")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR "service responses differ from ${GOLDEN}; inspect "
                      "${OUT}, and build the `update-golden` target if "
                      "the change is intentional")
endif()
