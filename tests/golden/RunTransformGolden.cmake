# Golden transform-IR diff driver (see tests/CMakeLists.txt):
#
#   cmake -DDRIVER=<ipcp_driver> -DSRCDIR=<repo root>
#         -DSOURCE=tests/golden/transforms/NAME.mf
#         -DOUT=<scratch prefix>
#         -DGOLDEN=<tests/golden/transforms/NAME>   (prefix; .before.ir
#                                                    and .after.ir appended)
#         [-DUPDATE=1] -P RunTransformGolden.cmake
#
# Runs `ipcp_driver SOURCE --optimize --dump-ir`, splits the dump at the
# before/after markers the driver prints, and byte-compares each half
# against the checked-in goldens. The .after.ir files pin exactly what
# the transform pipeline produces — review a diff there like generated
# code, because it is (docs/TRANSFORMS.md). With -DUPDATE=1 the goldens
# are rewritten instead; the `update-golden` build target does that
# after an intentional pipeline change.

if(NOT DEFINED DRIVER OR NOT DEFINED SRCDIR OR NOT DEFINED SOURCE OR
   NOT DEFINED OUT OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "RunTransformGolden.cmake needs -DDRIVER, -DSRCDIR, "
                      "-DSOURCE, -DOUT, and -DGOLDEN")
endif()

execute_process(
  COMMAND ${DRIVER} ${SRCDIR}/${SOURCE} --optimize --dump-ir
  OUTPUT_VARIABLE Dump
  ERROR_VARIABLE DumpErr
  RESULT_VARIABLE RC)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "${DRIVER} --optimize --dump-ir failed (exit ${RC}) "
                      "on ${SOURCE}:\n${DumpErr}")
endif()

set(BeforeMark "; === IR before optimization ===\n")
set(AfterMark "; === IR after optimization ===\n")
string(FIND "${Dump}" "${BeforeMark}" BeforePos)
string(FIND "${Dump}" "${AfterMark}" AfterPos)
if(BeforePos EQUAL -1 OR AfterPos EQUAL -1)
  message(FATAL_ERROR "before/after IR markers missing from the dump of "
                      "${SOURCE}")
endif()

string(LENGTH "${BeforeMark}" MarkLen)
math(EXPR BeforeStart "${BeforePos} + ${MarkLen}")
math(EXPR BeforeLen "${AfterPos} - ${BeforeStart}")
string(SUBSTRING "${Dump}" ${BeforeStart} ${BeforeLen} BeforeIR)
string(LENGTH "${AfterMark}" MarkLen)
math(EXPR AfterStart "${AfterPos} + ${MarkLen}")
string(SUBSTRING "${Dump}" ${AfterStart} -1 AfterIR)

file(WRITE ${OUT}.before.ir "${BeforeIR}")
file(WRITE ${OUT}.after.ir "${AfterIR}")

foreach(half before after)
  if(UPDATE)
    configure_file(${OUT}.${half}.ir ${GOLDEN}.${half}.ir COPYONLY)
    message(STATUS "updated ${GOLDEN}.${half}.ir")
  else()
    if(NOT EXISTS ${GOLDEN}.${half}.ir)
      message(FATAL_ERROR "missing golden file ${GOLDEN}.${half}.ir; build "
                          "the `update-golden` target to create it")
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT}.${half}.ir
              ${GOLDEN}.${half}.ir
      RESULT_VARIABLE DIFF)
    if(NOT DIFF EQUAL 0)
      message(FATAL_ERROR "${half}-optimization IR differs from "
                          "${GOLDEN}.${half}.ir; inspect ${OUT}.${half}.ir, "
                          "and build the `update-golden` target if the "
                          "change is intentional")
    endif()
  endif()
endforeach()
