//===- tools/ipcp_fuzz.cpp - Pipeline fuzzing harness ---------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Exercises the whole pipeline — lexer, parser, sema, lowering, verifier,
// analysis, propagation, interpreter — on generated and mutated inputs
// under tight resource budgets, asserting totality: no crash, no hang, no
// verifier violation, no unsound constant, and degradation reported
// exactly when a budget tripped. The same campaign also feeds generated
// and mutated service-request lines through the ipcp_serverd engine
// (docs/SERVICE.md), asserting the wire contract: every input is either
// rejected with an error code or answered with a status-bearing body.
//
// Two entry points share one harness:
//
//  * Deterministic mode (the default `main`): seeded random programs from
//    workload/Generator, each also re-run through a byte-level mutator.
//    Same --seed, same behavior — this is what CI runs (see the fuzz_smoke
//    tests and docs/ROBUSTNESS.md).
//
//      ipcp_fuzz [--runs=N] [--seed=S] [--no-mutate] [--crash-file=PATH]
//
//    Before each input runs, it is written to PATH (default
//    ipcp_fuzz_crash.mf) so a crash leaves its reproducer on disk; the
//    file is removed when the whole campaign passes.
//
//  * libFuzzer mode: compile with -DIPCP_FUZZ_LIBFUZZER and
//    -fsanitize=fuzzer to get LLVMFuzzerTestOneInput over raw bytes
//    (coverage-guided, when the toolchain provides libFuzzer).
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/Report.h"
#include "core/ServiceEngine.h"
#include "core/SummaryCache.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/AstLower.h"
#include "ir/Verifier.h"
#include "support/FileIO.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/Programs.h"
#include "workload/ServiceWorkload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>

using namespace ipcp;

namespace {

/// Budgets tight enough that adversarial inputs trip them quickly, loose
/// enough that ordinary generated programs complete un-degraded.
ResourceLimits fuzzLimits() {
  ResourceLimits Limits;
  Limits.MaxParseDepth = 96;
  Limits.MaxTokens = 200'000;
  Limits.MaxAstNodes = 100'000;
  Limits.MaxIRInstructions = 200'000;
  Limits.MaxPropagationEvals = 2'000'000;
  return Limits;
}

/// One pipeline pass over \p Source. \p CheckOracle additionally executes
/// the program and validates every reported constant against the recorded
/// dynamic entries (only meaningful for generator output: mutated bytes
/// rarely parse, and when they do the oracle still holds, but the run
/// budget is better spent elsewhere). Returns false — after printing the
/// failure — when an invariant broke; crashes and hangs are the
/// sanitizers' and the timeout's to catch.
bool runOne(const std::string &Source, bool CheckOracle,
            std::string *Failure) {
  IPCPOptions Opts;
  Opts.Limits = fuzzLimits();
  ResourceGuard Guard(Opts.Limits);

  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags, true, &Guard);
  if (!Ast)
    return true; // rejected cleanly (syntax/sema error or frontend trip)

  std::unique_ptr<Module> M = lowerProgram(*Ast);
  std::vector<std::string> Violations = verifyModule(*M, VerifyMode::PreSSA);
  if (!Violations.empty()) {
    *Failure = "verifier violation after lowering: " + Violations.front();
    return false;
  }

  Guard.checkIRInstructions(M->instructionCount(), "lowering");
  IPCPResult R = runIPCP(*M, Opts, &Guard);
  if (R.Status.Degraded != Guard.tripped()) {
    *Failure = "degradation flag disagrees with the guard latch";
    return false;
  }
  if (R.Status.Degraded)
    return true; // partial results; nothing further to cross-check

  // A second solve through the binding-multigraph propagator must agree
  // on the totals (the two formulations compute the same fixpoint).
  IPCPOptions BGOpts = Opts;
  BGOpts.UseBindingGraphPropagator = true;
  IPCPResult BG = runIPCP(*M, BGOpts);
  if (!BG.Status.Degraded &&
      (BG.TotalEntryConstants != R.TotalEntryConstants ||
       BG.TotalConstantRefs != R.TotalConstantRefs)) {
    *Failure = "call-graph and binding-graph propagators disagree";
    return false;
  }

  CompletePropagationResult CP = runCompletePropagation(*M, Opts, 4);
  if (CP.TotalConstantRefs < R.TotalConstantRefs) {
    *Failure = "complete propagation found fewer constant refs than one "
               "analysis round";
    return false;
  }

  // Incremental-cache invariants (docs/INCREMENTAL.md): a warm rerun
  // through an in-memory summary cache must normalize to the same report
  // as its cold populating run, and a corrupted serialization must
  // degrade to a cold run — never crash, never change results.
  {
    SummaryCache Cache;
    IPCPOptions CacheOpts = Opts;
    CacheOpts.Cache = &Cache;
    IPCPResult Cold = runIPCP(*M, CacheOpts);
    IPCPResult Warm = runIPCP(*M, CacheOpts);
    JsonValue ColdDoc = resultToJson(Cold);
    JsonValue WarmDoc = resultToJson(Warm);
    normalizeReportForDiff(ColdDoc);
    normalizeReportForDiff(WarmDoc);
    if (!Cold.Status.Degraded && !Warm.Status.Degraded &&
        ColdDoc != WarmDoc) {
      *Failure = "warm cache run disagrees with its cold populating run";
      return false;
    }
    if (Cache.committed()) {
      std::string Text = Cache.serialize(CacheOpts);
      std::string Bad = Text;
      if (!Bad.empty())
        Bad[Bad.size() / 2] ^= 0x20;
      SummaryCache Corrupt;
      Corrupt.loadFromString(Bad, CacheOpts); // may reject; must not crash
      IPCPOptions CorruptOpts = Opts;
      CorruptOpts.Cache = &Corrupt;
      IPCPResult After = runIPCP(*M, CorruptOpts);
      JsonValue AfterDoc = resultToJson(After);
      normalizeReportForDiff(AfterDoc);
      if (!After.Status.Degraded && AfterDoc != ColdDoc) {
        *Failure = "corrupted cache changed analysis results";
        return false;
      }
    }
  }

  if (CheckOracle) {
    ExecutionOptions Exec;
    Exec.MaxSteps = 2'000'000;
    OracleReport Oracle = checkSoundness(*M, R, Exec);
    if (!Oracle.Sound) {
      *Failure = "oracle violation: " + Oracle.Violations.front();
      return false;
    }
  } else {
    ExecutionOptions Exec;
    Exec.MaxSteps = 500'000;
    Exec.RecordEntrySnapshots = false;
    interpret(*M, Exec); // traps/out-of-fuel are fine; crashes are not
  }
  return true;
}

/// One long-lived engine shared by every service-request input, so the
/// campaign also exercises warm sessions, LRU eviction, and stat
/// accounting — not just the request codec.
ServiceEngine &fuzzServiceEngine() {
  static ServiceEngine Engine = [] {
    ServiceEngine::Config Conf;
    Conf.DefaultLimits = fuzzLimits();
    Conf.MaxSessions = 4; // small, so eviction happens during the campaign
    Conf.ScrubTimings = true;
    Conf.SuiteResolver = [](const std::string &Name, std::string &Out) {
      const SuiteProgram *Prog = findSuiteProgram(Name);
      if (!Prog)
        return false;
      Out = Prog->Source;
      return true;
    };
    return ServiceEngine(Conf);
  }();
  return Engine;
}

/// One service-protocol pass over \p Line (docs/SERVICE.md): the request
/// codec must either reject with a code+message or produce a dispatchable
/// request, and every dispatched body must be an object carrying a
/// "status" string. Crashes and hangs are, as ever, someone else's to
/// catch; this asserts the wire contract.
bool runServiceLine(const std::string &Line, std::string *Failure) {
  ServiceEngine &Engine = fuzzServiceEngine();
  ServiceRequest Req;
  std::string Code, Error;
  if (!Engine.parseRequestLine(Line, Req, &Code, &Error)) {
    if (Code.empty() || Error.empty()) {
      *Failure = "service parse rejection without a code or message";
      return false;
    }
    return true;
  }
  JsonValue Body;
  switch (Req.Op) {
  case ServiceRequest::Kind::Analyze:
    Body = Engine.analyze(Req);
    break;
  case ServiceRequest::Kind::AnalyzeBatch:
    Body = Engine.analyzeBatch(Req);
    break;
  case ServiceRequest::Kind::Stats:
    Body = Engine.statsBody();
    break;
  case ServiceRequest::Kind::FlushCache:
    Body = Engine.flushCacheBody();
    break;
  case ServiceRequest::Kind::Shutdown:
    Engine.shutdownFlush();
    return true;
  }
  const JsonValue *Status = Body.find("status");
  if (!Body.isObject() || !Status || !Status->isString()) {
    *Failure = "service response body lacks a status string";
    return false;
  }
  return true;
}

/// Deterministic byte-level mutation: truncations, flips, splices, and
/// nesting bombs, all drawn from \p Rng.
std::string mutate(const std::string &Source, std::mt19937_64 &Rng) {
  std::string Out = Source;
  switch (Rng() % 6) {
  case 0: // truncate
    if (!Out.empty())
      Out.resize(Rng() % Out.size());
    break;
  case 1: { // flip bytes
    for (unsigned I = 0, E = 1 + Rng() % 8; I != E && !Out.empty(); ++I)
      Out[Rng() % Out.size()] = char(Rng() % 256);
    break;
  }
  case 2: { // splice a chunk elsewhere
    if (Out.size() > 8) {
      size_t From = Rng() % (Out.size() / 2);
      size_t Len = 1 + Rng() % (Out.size() / 4);
      size_t To = Rng() % Out.size();
      Out.insert(To, Out.substr(From, Len));
    }
    break;
  }
  case 3: { // nesting bomb: deep parens inside an expression
    size_t Depth = 1 + Rng() % 256;
    std::string Bomb = "proc nest() { x = ";
    Bomb.append(Depth, '(');
    Bomb += "1";
    Bomb.append(Depth, ')');
    Bomb += "; }\n";
    Out += Bomb;
    break;
  }
  case 4: { // block bomb: deep statement nesting
    size_t Depth = 1 + Rng() % 256;
    std::string Bomb = "proc blocks() { ";
    for (size_t I = 0; I != Depth; ++I)
      Bomb += "if (1) { ";
    Bomb += "x = 1; ";
    for (size_t I = 0; I != Depth; ++I)
      Bomb += "} ";
    Bomb += "}\n";
    Out += Bomb;
    break;
  }
  default: { // arithmetic edge cases
    Out += "proc edges(a) { a = a / (a - a); a = -9223372036854775807 - 1; "
           "a = a * a; print a % (a - a); }\n";
    break;
  }
  }
  return Out;
}

/// Derives a generator shape from the campaign RNG.
GeneratorConfig shapeFor(uint64_t Seed, std::mt19937_64 &Rng) {
  GeneratorConfig Config;
  Config.Seed = Seed;
  Config.NumProcs = 2 + Rng() % 8;
  Config.NumGlobals = Rng() % 5;
  Config.StmtsPerProc = 4 + Rng() % 12;
  Config.MaxExprDepth = 2 + Rng() % 3;
  Config.AllowRecursion = (Rng() % 4) == 0;
  Config.UseArrays = (Rng() % 2) == 0;
  return Config;
}

} // namespace

#ifdef IPCP_FUZZ_LIBFUZZER

// Coverage-guided entry: libFuzzer supplies the bytes, the harness
// asserts totality. Link with -fsanitize=fuzzer (no main here).
extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string Source(reinterpret_cast<const char *>(Data), Size);
  std::string Failure;
  if (!runOne(Source, /*CheckOracle=*/false, &Failure)) {
    std::fprintf(stderr, "invariant failure: %s\n", Failure.c_str());
    std::abort();
  }
  // The same bytes double as a service request line; JSON-shaped inputs
  // reach the engine, the rest must be rejected with a code + message.
  if (!runServiceLine(Source, &Failure)) {
    std::fprintf(stderr, "invariant failure: %s\n", Failure.c_str());
    std::abort();
  }
  return 0;
}

#else // deterministic driver

int main(int argc, char **argv) {
  uint64_t Runs = 1000, Seed = 1;
  bool Mutate = true;
  std::string CrashFile = "ipcp_fuzz_crash.mf";
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--runs=", 0) == 0)
      Runs = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    else if (Arg.rfind("--seed=", 0) == 0)
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    else if (Arg == "--no-mutate")
      Mutate = false;
    else if (Arg.rfind("--crash-file=", 0) == 0)
      CrashFile = Arg.substr(13);
    else {
      std::fprintf(stderr,
                   "usage: ipcp_fuzz [--runs=N] [--seed=S] [--no-mutate] "
                   "[--crash-file=PATH]\n");
      return 1;
    }
  }

  std::mt19937_64 Rng(Seed);
  for (uint64_t Run = 0; Run != Runs; ++Run) {
    std::string Source = generateProgram(shapeFor(Seed + Run, Rng));
    // Persist the input before running it: a crash (or sanitizer abort)
    // leaves its reproducer at CrashFile for CI to upload.
    std::string Inputs[2] = {Source, Mutate ? mutate(Source, Rng) : ""};
    for (unsigned Variant = 0; Variant != (Mutate ? 2u : 1u); ++Variant) {
      writeStringToFile(CrashFile, Inputs[Variant], nullptr);
      std::string Failure;
      if (!runOne(Inputs[Variant], /*CheckOracle=*/Variant == 0, &Failure)) {
        std::fprintf(stderr,
                     "FAIL at run %llu variant %u (seed %llu): %s\n"
                     "reproducer written to %s\n",
                     static_cast<unsigned long long>(Run), Variant,
                     static_cast<unsigned long long>(Seed), Failure.c_str(),
                     CrashFile.c_str());
        return 1;
      }
    }
    // Same campaign, second surface: a short deterministic service log
    // plus a mutated copy of each line through the daemon's request
    // codec and engine (docs/SERVICE.md). Pristine lines exercise warm
    // sessions and eviction on the shared engine; mutated ones mostly
    // probe the rejection paths.
    ServiceLogConfig LogConf;
    LogConf.Seed = Seed + Run;
    LogConf.Requests = 2;
    LogConf.EndWithStats = (Run % 4) == 0;
    LogConf.EndWithShutdown = (Run % 8) == 0;
    for (const std::string &Line : generateServiceLog(LogConf)) {
      std::string Variants[2] = {Line, mutate(Line, Rng)};
      for (const std::string &Input : Variants) {
        writeStringToFile(CrashFile, Input, nullptr);
        std::string Failure;
        if (!runServiceLine(Input, &Failure)) {
          std::fprintf(stderr,
                       "FAIL at run %llu service line (seed %llu): %s\n"
                       "reproducer written to %s\n",
                       static_cast<unsigned long long>(Run),
                       static_cast<unsigned long long>(Seed), Failure.c_str(),
                       CrashFile.c_str());
          return 1;
        }
      }
    }
    if ((Run + 1) % 500 == 0)
      std::printf("ipcp_fuzz: %llu/%llu inputs ok\n",
                  static_cast<unsigned long long>(Run + 1),
                  static_cast<unsigned long long>(Runs));
  }
  std::remove(CrashFile.c_str());
  std::printf("ipcp_fuzz: %llu inputs, 0 failures\n",
              static_cast<unsigned long long>(Runs * (Mutate ? 2 : 1)));
  return 0;
}

#endif // IPCP_FUZZ_LIBFUZZER
