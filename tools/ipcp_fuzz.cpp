//===- tools/ipcp_fuzz.cpp - Pipeline fuzzing harness ---------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Exercises the whole pipeline — lexer, parser, sema, lowering, verifier,
// analysis, propagation, interpreter — on generated and mutated inputs
// under tight resource budgets, asserting totality: no crash, no hang, no
// verifier violation, no unsound constant, and degradation reported
// exactly when a budget tripped. The same campaign also feeds generated
// and mutated service-request lines through the ipcp_serverd engine
// (docs/SERVICE.md), asserting the wire contract: every input is either
// rejected with an error code or answered with a status-bearing body.
//
// Two entry points share one harness:
//
//  * Deterministic mode (the default `main`): seeded random programs from
//    workload/Generator, each also re-run through a byte-level mutator.
//    Same --seed, same behavior — this is what CI runs (see the fuzz_smoke
//    tests and docs/ROBUSTNESS.md).
//
//      ipcp_fuzz [--runs=N] [--seed=S] [--no-mutate] [--optimize]
//                [--contexts] [--crash-file=PATH]
//
//    With --optimize every parsed input additionally runs through the
//    transform pipeline (docs/TRANSFORMS.md) and the harness asserts
//    the behavioral contract: the optimized module verifies, its
//    interpretation agrees with the original (prefix-agreement when the
//    original trapped or ran out of fuel), and it never executes more
//    steps. Sanitizer CI jobs run this mode.
//
//    With --contexts every analyzable input is additionally solved by
//    the value-contexts engine (docs/CONTEXTS.md) at the default and a
//    starvation MaxContexts budget, asserting it never loses a fact the
//    1986 engine proved, stays dynamically sound, and reports its
//    budget trips (the fuzz_contexts_smoke test).
//
//    Before each input runs, it is written to PATH (default
//    ipcp_fuzz_crash.mf) so a crash leaves its reproducer on disk; the
//    file is removed when the whole campaign passes.
//
//  * libFuzzer mode: compile with -DIPCP_FUZZ_LIBFUZZER and
//    -fsanitize=fuzzer to get LLVMFuzzerTestOneInput over raw bytes
//    (coverage-guided, when the toolchain provides libFuzzer).
//
// Chaos mode (docs/ROBUSTNESS.md) replaces the campaign with a
// fault-injected replay of a generated service workload through the
// full sharded service, asserting the robustness contract end to end:
//
//      ipcp_fuzz --chaos=N [--seed=S] [--chaos-dir=DIR]
//
//    * every request line is answered under a seeded store/cache fault
//      plan, and the plan injects (faults actually fire);
//    * an identical-plan rerun is byte-identical, and so is the same
//      replay at --shards=4 (store faults live on the reader thread);
//    * the engine failure boundary converts injected analysis faults
//      into `internal` error envelopes marked retryable, again
//      byte-deterministically;
//    * the content store the faulted run tore up scrubs clean, and a
//      second scrub finds nothing left to repair;
//    * a warm run over the recovered store normalizes to the same
//      reports as a fault-free cold run.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "core/Report.h"
#include "core/ServiceEngine.h"
#include "core/ShardedService.h"
#include "core/SummaryCache.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/AstLower.h"
#include "ir/Verifier.h"
#include "support/ContentStore.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "transform/Transform.h"
#include "workload/Generator.h"
#include "workload/Oracle.h"
#include "workload/Programs.h"
#include "workload/ServiceWorkload.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

/// Budgets tight enough that adversarial inputs trip them quickly, loose
/// enough that ordinary generated programs complete un-degraded.
/// --optimize: every parsed input also runs the transform pipeline and
/// the harness asserts its behavioral contract (set once in main;
/// docs/TRANSFORMS.md).
bool OptimizeInvariants = false;

/// --contexts: every analyzable input is additionally solved by the
/// value-contexts engine at the default budget and again at a
/// starvation budget (MaxContexts=2), asserting its contract
/// (docs/CONTEXTS.md): never a crash, never a constant the 1986 engine
/// found but the contexts engine lost, sound constants under the
/// dynamic oracle, and a flagged degradation whenever the budget trips.
bool ContextsInvariants = false;

ResourceLimits fuzzLimits() {
  ResourceLimits Limits;
  Limits.MaxParseDepth = 96;
  Limits.MaxTokens = 200'000;
  Limits.MaxAstNodes = 100'000;
  Limits.MaxIRInstructions = 200'000;
  Limits.MaxPropagationEvals = 2'000'000;
  return Limits;
}

/// One pipeline pass over \p Source. \p CheckOracle additionally executes
/// the program and validates every reported constant against the recorded
/// dynamic entries (only meaningful for generator output: mutated bytes
/// rarely parse, and when they do the oracle still holds, but the run
/// budget is better spent elsewhere). Returns false — after printing the
/// failure — when an invariant broke; crashes and hangs are the
/// sanitizers' and the timeout's to catch.
bool runOne(const std::string &Source, bool CheckOracle,
            std::string *Failure) {
  IPCPOptions Opts;
  Opts.Limits = fuzzLimits();
  ResourceGuard Guard(Opts.Limits);

  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags, true, &Guard);
  if (!Ast)
    return true; // rejected cleanly (syntax/sema error or frontend trip)

  std::unique_ptr<Module> M = lowerProgram(*Ast);
  std::vector<std::string> Violations = verifyModule(*M, VerifyMode::PreSSA);
  if (!Violations.empty()) {
    *Failure = "verifier violation after lowering: " + Violations.front();
    return false;
  }

  Guard.checkIRInstructions(M->instructionCount(), "lowering");
  IPCPResult R = runIPCP(*M, Opts, &Guard);
  if (R.Status.Degraded != Guard.tripped()) {
    *Failure = "degradation flag disagrees with the guard latch";
    return false;
  }
  if (R.Status.Degraded)
    return true; // partial results; nothing further to cross-check

  // A second solve through the binding-multigraph propagator must agree
  // on the totals (the two formulations compute the same fixpoint).
  IPCPOptions BGOpts = Opts;
  BGOpts.UseBindingGraphPropagator = true;
  IPCPResult BG = runIPCP(*M, BGOpts);
  if (!BG.Status.Degraded &&
      (BG.TotalEntryConstants != R.TotalEntryConstants ||
       BG.TotalConstantRefs != R.TotalConstantRefs)) {
    *Failure = "call-graph and binding-graph propagators disagree";
    return false;
  }

  // Value-contexts invariants (--contexts; docs/CONTEXTS.md): the
  // tabulating engine refines the 1986 baseline, so its CONSTANTS sets
  // must contain the jump engine's per procedure — at the default
  // budget and under a two-context starvation budget alike — and a
  // tripped budget must be reported, never crash.
  if (ContextsInvariants) {
    const unsigned Budgets[] = {0 /* default */, 2};
    for (unsigned Budget : Budgets) {
      IPCPOptions CtxOpts = Opts;
      CtxOpts.Engine = PropagationEngine::Contexts;
      if (Budget)
        CtxOpts.MaxContexts = Budget;
      IPCPResult Ctx = runIPCP(*M, CtxOpts);
      if (!Ctx.ContextStudy.Enabled) {
        *Failure = "contexts engine ran without filling its study block";
        return false;
      }
      if (Ctx.Status.Degraded)
        continue; // guard trip: baseline (or empty) fallback is sound
      for (const ProcedureResult &PR : R.Procs) {
        const ProcedureResult *CP = Ctx.findProc(PR.Name);
        if (!CP) {
          *Failure = "contexts engine lost procedure " + PR.Name;
          return false;
        }
        for (const auto &Fact : PR.EntryConstants)
          if (std::find(CP->EntryConstants.begin(), CP->EntryConstants.end(),
                        Fact) == CP->EntryConstants.end()) {
            *Failure = "contexts engine (budget " + std::to_string(Budget) +
                       ") lost " + PR.Name + "." + Fact.first;
            return false;
          }
      }
      // Refs are deliberately NOT required to be >=: extra entry
      // constants can prove a branch dead, and refs inside the dead
      // block stop counting (docs/CONTEXTS.md "What about refs?"). But
      // when the engines proved the *same* constants, the record stage
      // sees identical seeds and the refs must match exactly.
      if (Ctx.TotalEntryConstants == R.TotalEntryConstants &&
          Ctx.TotalConstantRefs != R.TotalConstantRefs) {
        *Failure = "identical CONSTANTS sets but different constant refs "
                   "between the engines";
        return false;
      }
      if (Ctx.ContextStudy.ValConstants <
          Ctx.ContextStudy.BaselineValConstants) {
        *Failure = "context study reports a negative precision delta";
        return false;
      }
      if (Ctx.ContextStudy.Merges > 0 && !Ctx.ContextStudy.BudgetTripped) {
        *Failure = "summary merges happened but the budget trip was not "
                   "reported";
        return false;
      }
      if (CheckOracle) {
        ExecutionOptions Exec;
        Exec.MaxSteps = 2'000'000;
        OracleReport Oracle = checkSoundness(*M, Ctx, Exec);
        if (!Oracle.Sound) {
          *Failure = "contexts oracle violation: " + Oracle.Violations.front();
          return false;
        }
      }
    }
  }

  CompletePropagationResult CP = runCompletePropagation(*M, Opts, 4);
  if (CP.TotalConstantRefs < R.TotalConstantRefs) {
    *Failure = "complete propagation found fewer constant refs than one "
               "analysis round";
    return false;
  }

  // Incremental-cache invariants (docs/INCREMENTAL.md): a warm rerun
  // through an in-memory summary cache must normalize to the same report
  // as its cold populating run, and a corrupted serialization must
  // degrade to a cold run — never crash, never change results.
  {
    SummaryCache Cache;
    IPCPOptions CacheOpts = Opts;
    CacheOpts.Cache = &Cache;
    IPCPResult Cold = runIPCP(*M, CacheOpts);
    IPCPResult Warm = runIPCP(*M, CacheOpts);
    JsonValue ColdDoc = resultToJson(Cold);
    JsonValue WarmDoc = resultToJson(Warm);
    normalizeReportForDiff(ColdDoc);
    normalizeReportForDiff(WarmDoc);
    if (!Cold.Status.Degraded && !Warm.Status.Degraded &&
        ColdDoc != WarmDoc) {
      *Failure = "warm cache run disagrees with its cold populating run";
      return false;
    }
    if (Cache.committed()) {
      std::string Text = Cache.serialize(CacheOpts);
      std::string Bad = Text;
      if (!Bad.empty())
        Bad[Bad.size() / 2] ^= 0x20;
      SummaryCache Corrupt;
      Corrupt.loadFromString(Bad, CacheOpts); // may reject; must not crash
      IPCPOptions CorruptOpts = Opts;
      CorruptOpts.Cache = &Corrupt;
      IPCPResult After = runIPCP(*M, CorruptOpts);
      JsonValue AfterDoc = resultToJson(After);
      normalizeReportForDiff(AfterDoc);
      if (!After.Status.Degraded && AfterDoc != ColdDoc) {
        *Failure = "corrupted cache changed analysis results";
        return false;
      }
    }
  }

  if (CheckOracle) {
    ExecutionOptions Exec;
    Exec.MaxSteps = 2'000'000;
    OracleReport Oracle = checkSoundness(*M, R, Exec);
    if (!Oracle.Sound) {
      *Failure = "oracle violation: " + Oracle.Violations.front();
      return false;
    }
  } else {
    ExecutionOptions Exec;
    Exec.MaxSteps = 500'000;
    Exec.RecordEntrySnapshots = false;
    interpret(*M, Exec); // traps/out-of-fuel are fine; crashes are not
  }

  // Transform-pipeline invariants (--optimize; docs/TRANSFORMS.md).
  // Last on purpose: optimizeModule rewrites M in place, so every
  // analysis cross-check above must see the original module. The
  // contract holds even when a budget tripped mid-rewrite — a degraded
  // pipeline may stop early, never emit an unsound rewrite.
  if (OptimizeInvariants) {
    ExecutionOptions Exec;
    Exec.MaxSteps = 500'000;
    Exec.RecordEntrySnapshots = false;
    ExecutionResult Before = interpret(*M, Exec);
    optimizeModule(*M, Opts);
    std::vector<std::string> OptViolations =
        verifyModule(*M, VerifyMode::PreSSA);
    if (!OptViolations.empty()) {
      *Failure =
          "verifier violation after optimization: " + OptViolations.front();
      return false;
    }
    ExecutionResult After = interpret(*M, Exec);
    if (Before.ok()) {
      if (After.TheStatus != Before.TheStatus) {
        *Failure = "optimization changed execution status";
        return false;
      }
      if (After.Output != Before.Output) {
        *Failure = "optimization changed observable output";
        return false;
      }
      if (After.Steps > Before.Steps) {
        *Failure = "optimized module executed more steps than the original";
        return false;
      }
    } else {
      // A trapping or out-of-fuel run may produce fewer outputs once
      // dead (including trapping-dead) code is gone; the prefix must
      // agree.
      size_t Common = std::min(Before.Output.size(), After.Output.size());
      for (size_t I = 0; I != Common; ++I)
        if (After.Output[I] != Before.Output[I]) {
          *Failure = "optimization changed the agreed output prefix";
          return false;
        }
    }
  }
  return true;
}

/// One long-lived engine shared by every service-request input, so the
/// campaign also exercises warm sessions, LRU eviction, and stat
/// accounting — not just the request codec.
ServiceEngine &fuzzServiceEngine() {
  static ServiceEngine Engine = [] {
    ServiceEngine::Config Conf;
    Conf.DefaultLimits = fuzzLimits();
    Conf.MaxSessions = 4; // small, so eviction happens during the campaign
    Conf.ScrubTimings = true;
    Conf.SuiteResolver = [](const std::string &Name, std::string &Out) {
      const SuiteProgram *Prog = findSuiteProgram(Name);
      if (!Prog)
        return false;
      Out = Prog->Source;
      return true;
    };
    return ServiceEngine(Conf);
  }();
  return Engine;
}

/// One service-protocol pass over \p Line (docs/SERVICE.md): the request
/// codec must either reject with a code+message or produce a dispatchable
/// request, and every dispatched body must be an object carrying a
/// "status" string. Crashes and hangs are, as ever, someone else's to
/// catch; this asserts the wire contract.
bool runServiceLine(const std::string &Line, std::string *Failure) {
  ServiceEngine &Engine = fuzzServiceEngine();
  ServiceRequest Req;
  std::string Code, Error;
  if (!Engine.parseRequestLine(Line, Req, &Code, &Error)) {
    if (Code.empty() || Error.empty()) {
      *Failure = "service parse rejection without a code or message";
      return false;
    }
    return true;
  }
  JsonValue Body;
  switch (Req.Op) {
  case ServiceRequest::Kind::Analyze:
    Body = Engine.analyze(Req);
    break;
  case ServiceRequest::Kind::AnalyzeBatch:
    Body = Engine.analyzeBatch(Req);
    break;
  case ServiceRequest::Kind::Stats:
    Body = Engine.statsBody();
    break;
  case ServiceRequest::Kind::FlushCache:
    Body = Engine.flushCacheBody();
    break;
  case ServiceRequest::Kind::Shutdown:
    Engine.shutdownFlush();
    return true;
  }
  const JsonValue *Status = Body.find("status");
  if (!Body.isObject() || !Status || !Status->isString()) {
    *Failure = "service response body lacks a status string";
    return false;
  }
  return true;
}

/// Deterministic byte-level mutation: truncations, flips, splices, and
/// nesting bombs, all drawn from \p Rng.
std::string mutate(const std::string &Source, std::mt19937_64 &Rng) {
  std::string Out = Source;
  switch (Rng() % 6) {
  case 0: // truncate
    if (!Out.empty())
      Out.resize(Rng() % Out.size());
    break;
  case 1: { // flip bytes
    for (unsigned I = 0, E = 1 + Rng() % 8; I != E && !Out.empty(); ++I)
      Out[Rng() % Out.size()] = char(Rng() % 256);
    break;
  }
  case 2: { // splice a chunk elsewhere
    if (Out.size() > 8) {
      size_t From = Rng() % (Out.size() / 2);
      size_t Len = 1 + Rng() % (Out.size() / 4);
      size_t To = Rng() % Out.size();
      Out.insert(To, Out.substr(From, Len));
    }
    break;
  }
  case 3: { // nesting bomb: deep parens inside an expression
    size_t Depth = 1 + Rng() % 256;
    std::string Bomb = "proc nest() { x = ";
    Bomb.append(Depth, '(');
    Bomb += "1";
    Bomb.append(Depth, ')');
    Bomb += "; }\n";
    Out += Bomb;
    break;
  }
  case 4: { // block bomb: deep statement nesting
    size_t Depth = 1 + Rng() % 256;
    std::string Bomb = "proc blocks() { ";
    for (size_t I = 0; I != Depth; ++I)
      Bomb += "if (1) { ";
    Bomb += "x = 1; ";
    for (size_t I = 0; I != Depth; ++I)
      Bomb += "} ";
    Bomb += "}\n";
    Out += Bomb;
    break;
  }
  default: { // arithmetic edge cases
    Out += "proc edges(a) { a = a / (a - a); a = -9223372036854775807 - 1; "
           "a = a * a; print a % (a - a); }\n";
    break;
  }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Chaos mode
//===----------------------------------------------------------------------===//

/// One chaos replay: \p Lines through a fresh ShardedService over a
/// fresh store at \p CacheDir, under \p Plan. Returns the response
/// lines in order and the number of faults the replay injected (the
/// delta of the global totals, which includes the shutdown flush).
std::vector<std::string> chaosReplay(const std::vector<std::string> &Lines,
                                     unsigned Shards, unsigned Jobs,
                                     const std::string &CacheDir,
                                     const std::string &Plan,
                                     uint64_t *InjectedOut) {
  std::string Error;
  if (!faultInjector().installPlan(Plan, &Error)) {
    std::fprintf(stderr, "chaos: bad fault plan '%s': %s\n", Plan.c_str(),
                 Error.c_str());
    std::exit(1);
  }
  uint64_t Before = faultInjector().totals().Injected;

  ShardedService::Config Conf;
  Conf.Shards = Shards;
  Conf.Jobs = Jobs;
  Conf.Engine.ScrubTimings = true;
  Conf.Engine.MaxSessions = 2; // small, so eviction drives store traffic
  Conf.Engine.CacheDir = CacheDir;
  Conf.Engine.SuiteResolver = [](const std::string &Name, std::string &Out) {
    const SuiteProgram *Prog = findSuiteProgram(Name);
    if (!Prog)
      return false;
    Out = Prog->Source;
    return true;
  };

  std::vector<std::string> Responses;
  {
    ShardedService Svc(Conf);
    std::unique_ptr<ShardedService::Stream> St = Svc.openStream();
    std::thread Consumer([&] {
      std::string Response;
      while (St->popResponse(Response))
        Responses.push_back(Response);
    });
    for (const std::string &Line : Lines)
      if (Svc.submitLine(*St, Line))
        break;
    Svc.finishStream(*St);
    Consumer.join();
    if (std::getenv("IPCP_CHAOS_VERBOSE")) {
      std::unique_ptr<ShardedService::Stream> St2 = Svc.openStream();
      Svc.submitLine(*St2, "{\"op\":\"stats\"}");
      Svc.finishStream(*St2);
      std::string StatsLine;
      while (St2->popResponse(StatsLine))
        std::printf("chaos service stats: %s", StatsLine.c_str());
    }
    // Persist dirty sessions so the store carries real state into the
    // scrub and warm phases (and so shutdown-path writes see faults
    // too — after capture, where their ordering cannot perturb the
    // compared bytes).
    Svc.shutdownFlush();
  }

  if (InjectedOut)
    *InjectedOut = faultInjector().totals().Injected - Before;
  if (!Plan.empty() && std::getenv("IPCP_CHAOS_VERBOSE"))
    std::printf("chaos replay stats: %s\n",
                faultInjector().statsJson().dump(2).c_str());
  faultInjector().clear();
  return Responses;
}

/// Every line answered, every answer status-bearing.
bool chaosResponsesTotal(const std::vector<std::string> &Lines,
                         const std::vector<std::string> &Responses,
                         const char *Phase) {
  if (Responses.size() != Lines.size()) {
    std::fprintf(stderr, "chaos %s: FAILED - %zu responses for %zu lines\n",
                 Phase, Responses.size(), Lines.size());
    return false;
  }
  for (const std::string &R : Responses)
    if (R.find("\"status\":\"") == std::string::npos) {
      std::fprintf(stderr, "chaos %s: FAILED - response without status: %s",
                   Phase, R.c_str());
      return false;
    }
  return true;
}

/// Parses each response line and strips warm-volatile content so a warm
/// replay can be compared against a cold one.
bool chaosNormalize(const std::vector<std::string> &Responses,
                    std::vector<std::string> &Out, const char *Phase) {
  Out.clear();
  for (const std::string &R : Responses) {
    std::string Error;
    std::optional<JsonValue> Doc = JsonValue::parse(R, &Error);
    if (!Doc) {
      std::fprintf(stderr, "chaos %s: FAILED - unparseable response: %s\n",
                   Phase, Error.c_str());
      return false;
    }
    normalizeReportForDiff(*Doc);
    Out.push_back(Doc->dump());
  }
  return true;
}

int runChaos(uint64_t Requests, uint64_t Seed, const std::string &Dir) {
  std::filesystem::remove_all(Dir);

  ServiceLogConfig LogConf;
  LogConf.Session = "chaos";
  LogConf.SessionCount = 4;
  LogConf.Seed = Seed;
  LogConf.Requests = unsigned(Requests);
  LogConf.RepeatChance = 70;
  LogConf.BatchChance = 10;
  LogConf.EndWithStats = false;
  LogConf.EndWithShutdown = false;
  std::vector<std::string> Lines = generateServiceLog(LogConf);

  // Seeded store/cache plan. The periods are derived from the seed so
  // different campaigns stress different interleavings, but any one
  // seed is fully replayable.
  char Plan[128];
  std::snprintf(Plan, sizeof Plan,
                "store.commit.*:period=%u;store.read.*:period=%u;"
                "cache.save:period=%u",
                unsigned(3 + Seed % 5), unsigned(5 + (Seed / 5) % 5),
                unsigned(2 + (Seed / 25) % 4));
  std::printf("ipcp_fuzz chaos: %zu lines, plan '%s'\n", Lines.size(), Plan);

  // Faulted cold run, then the same plan again, then the same plan
  // across four shards: all three must produce identical bytes.
  uint64_t InjA = 0, InjB = 0, InjC = 0;
  std::vector<std::string> A =
      chaosReplay(Lines, 1, 1, Dir + "/a", Plan, &InjA);
  if (!chaosResponsesTotal(Lines, A, "replay"))
    return 1;
  if (InjA == 0) {
    std::fprintf(stderr, "chaos replay: FAILED - plan injected nothing\n");
    return 1;
  }
  std::vector<std::string> B =
      chaosReplay(Lines, 1, 1, Dir + "/b", Plan, &InjB);
  if (A != B) {
    std::fprintf(stderr,
                 "chaos replay: FAILED - identical plan, different bytes\n");
    return 1;
  }
  std::vector<std::string> C =
      chaosReplay(Lines, 4, 2, Dir + "/c", Plan, &InjC);
  if (A != C) {
    std::fprintf(stderr,
                 "chaos replay: FAILED - shards=4 diverged from shards=1 "
                 "under store faults\n");
    return 1;
  }
  std::printf("ipcp_fuzz chaos: replay ok (injected %llu/%llu/%llu, "
              "bytes identical across reruns and shard counts)\n",
              (unsigned long long)InjA, (unsigned long long)InjB,
              (unsigned long long)InjC);

  // Failure boundary: analysis-stage faults must come back as
  // `internal` error envelopes marked retryable — and, single-threaded,
  // byte-deterministically.
  uint64_t InjF = 0;
  std::vector<std::string> F = chaosReplay(
      Lines, 1, 1, Dir + "/f", "service.analyze:period=4", &InjF);
  if (!chaosResponsesTotal(Lines, F, "boundary"))
    return 1;
  uint64_t Internal = 0;
  for (const std::string &R : F)
    if (R.find("\"code\":\"internal\"") != std::string::npos) {
      ++Internal;
      if (R.find("\"retryable\":true") == std::string::npos) {
        std::fprintf(stderr,
                     "chaos boundary: FAILED - internal error not marked "
                     "retryable: %s",
                     R.c_str());
        return 1;
      }
    }
  if (Internal == 0) {
    std::fprintf(stderr,
                 "chaos boundary: FAILED - no internal-error envelopes\n");
    return 1;
  }
  std::vector<std::string> F2 = chaosReplay(
      Lines, 1, 1, Dir + "/f2", "service.analyze:period=4", nullptr);
  if (F != F2) {
    std::fprintf(stderr,
                 "chaos boundary: FAILED - error envelopes not "
                 "deterministic\n");
    return 1;
  }
  std::printf("ipcp_fuzz chaos: boundary ok (%llu retryable internal "
              "errors, deterministic)\n",
              (unsigned long long)Internal);

  // Recovery: the faulted run left torn temp files (store.commit.*
  // fires between the temp write and the rename). A scrub must repair
  // the store, and a second scrub must find nothing left.
  {
    ContentStore::Options StoreOpts;
    StoreOpts.ScrubOnOpen = false;
    ContentStore Store(Dir + "/a", StoreOpts);
    ContentStore::ScrubReport First = Store.scrub();
    if (!First.Ok) {
      std::fprintf(stderr, "chaos recovery: FAILED - scrub reported a "
                           "failed repair\n");
      return 1;
    }
    if (First.TmpSwept == 0) {
      // The commit-point plan fires between temp write and rename, so a
      // faulted run must leave litter; a clean store here means the
      // torn-write path was never exercised.
      std::fprintf(stderr, "chaos recovery: FAILED - no torn writes to "
                           "recover (commit faults never fired?)\n");
      return 1;
    }
    ContentStore::ScrubReport Second = Store.scrub();
    if (Second.TmpSwept || Second.Quarantined || Second.DanglingDropped) {
      std::fprintf(stderr,
                   "chaos recovery: FAILED - second scrub still repairing "
                   "(tmp %llu, quarantined %llu, dangling %llu)\n",
                   (unsigned long long)Second.TmpSwept,
                   (unsigned long long)Second.Quarantined,
                   (unsigned long long)Second.DanglingDropped);
      return 1;
    }
    std::printf("ipcp_fuzz chaos: recovery ok (swept %llu tmp, "
                "quarantined %llu, dropped %llu dangling; second scrub "
                "clean)\n",
                (unsigned long long)First.TmpSwept,
                (unsigned long long)First.Quarantined,
                (unsigned long long)First.DanglingDropped);
  }

  // Warm equivalence: a warm replay over the recovered store must
  // normalize to the same reports as a fault-free cold run.
  std::vector<std::string> Cold =
      chaosReplay(Lines, 1, 1, Dir + "/d", "", nullptr);
  std::vector<std::string> Warm =
      chaosReplay(Lines, 1, 1, Dir + "/a", "", nullptr);
  if (!chaosResponsesTotal(Lines, Cold, "warm") ||
      !chaosResponsesTotal(Lines, Warm, "warm"))
    return 1;
  std::vector<std::string> ColdNorm, WarmNorm;
  if (!chaosNormalize(Cold, ColdNorm, "warm") ||
      !chaosNormalize(Warm, WarmNorm, "warm"))
    return 1;
  if (ColdNorm != WarmNorm) {
    for (size_t I = 0; I != ColdNorm.size(); ++I)
      if (ColdNorm[I] != WarmNorm[I]) {
        std::fprintf(stderr,
                     "chaos warm: FAILED - line %zu diverges after "
                     "normalization\ncold: %s\nwarm: %s\n",
                     I, ColdNorm[I].c_str(), WarmNorm[I].c_str());
        return 1;
      }
    std::fprintf(stderr, "chaos warm: FAILED - normalized streams "
                         "diverge\n");
    return 1;
  }
  std::printf("ipcp_fuzz chaos: warm-start over recovered store matches "
              "cold run (%zu lines)\n",
              Lines.size());

  std::filesystem::remove_all(Dir);
  std::printf("ipcp_fuzz chaos: all invariants held\n");
  return 0;
}

/// Derives a generator shape from the campaign RNG.
GeneratorConfig shapeFor(uint64_t Seed, std::mt19937_64 &Rng) {
  GeneratorConfig Config;
  Config.Seed = Seed;
  Config.NumProcs = 2 + Rng() % 8;
  Config.NumGlobals = Rng() % 5;
  Config.StmtsPerProc = 4 + Rng() % 12;
  Config.MaxExprDepth = 2 + Rng() % 3;
  Config.AllowRecursion = (Rng() % 4) == 0;
  Config.UseArrays = (Rng() % 2) == 0;
  return Config;
}

} // namespace

#ifdef IPCP_FUZZ_LIBFUZZER

// Coverage-guided entry: libFuzzer supplies the bytes, the harness
// asserts totality. Link with -fsanitize=fuzzer (no main here).
extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::string Source(reinterpret_cast<const char *>(Data), Size);
  std::string Failure;
  if (!runOne(Source, /*CheckOracle=*/false, &Failure)) {
    std::fprintf(stderr, "invariant failure: %s\n", Failure.c_str());
    std::abort();
  }
  // The same bytes double as a service request line; JSON-shaped inputs
  // reach the engine, the rest must be rejected with a code + message.
  if (!runServiceLine(Source, &Failure)) {
    std::fprintf(stderr, "invariant failure: %s\n", Failure.c_str());
    std::abort();
  }
  return 0;
}

#else // deterministic driver

int main(int argc, char **argv) {
  uint64_t Runs = 1000, Seed = 1, Chaos = 0;
  bool Mutate = true;
  std::string CrashFile = "ipcp_fuzz_crash.mf";
  std::string ChaosDir = "ipcp_fuzz_chaos";
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--runs=", 0) == 0)
      Runs = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    else if (Arg.rfind("--seed=", 0) == 0)
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    else if (Arg == "--no-mutate")
      Mutate = false;
    else if (Arg == "--optimize")
      OptimizeInvariants = true;
    else if (Arg == "--contexts")
      ContextsInvariants = true;
    else if (Arg.rfind("--crash-file=", 0) == 0)
      CrashFile = Arg.substr(13);
    else if (Arg.rfind("--chaos=", 0) == 0)
      Chaos = std::strtoull(Arg.c_str() + 8, nullptr, 10);
    else if (Arg.rfind("--chaos-dir=", 0) == 0)
      ChaosDir = Arg.substr(12);
    else {
      std::fprintf(stderr,
                   "usage: ipcp_fuzz [--runs=N] [--seed=S] [--no-mutate] "
                   "[--optimize] [--contexts] [--crash-file=PATH]\n"
                   "       ipcp_fuzz --chaos=N [--seed=S] [--chaos-dir=DIR]\n");
      return 1;
    }
  }

  if (Chaos)
    return runChaos(Chaos, Seed, ChaosDir);

  std::mt19937_64 Rng(Seed);
  for (uint64_t Run = 0; Run != Runs; ++Run) {
    std::string Source = generateProgram(shapeFor(Seed + Run, Rng));
    // Persist the input before running it: a crash (or sanitizer abort)
    // leaves its reproducer at CrashFile for CI to upload.
    std::string Inputs[2] = {Source, Mutate ? mutate(Source, Rng) : ""};
    for (unsigned Variant = 0; Variant != (Mutate ? 2u : 1u); ++Variant) {
      writeStringToFile(CrashFile, Inputs[Variant], nullptr);
      std::string Failure;
      if (!runOne(Inputs[Variant], /*CheckOracle=*/Variant == 0, &Failure)) {
        std::fprintf(stderr,
                     "FAIL at run %llu variant %u (seed %llu): %s\n"
                     "reproducer written to %s\n",
                     static_cast<unsigned long long>(Run), Variant,
                     static_cast<unsigned long long>(Seed), Failure.c_str(),
                     CrashFile.c_str());
        return 1;
      }
    }
    // Same campaign, second surface: a short deterministic service log
    // plus a mutated copy of each line through the daemon's request
    // codec and engine (docs/SERVICE.md). Pristine lines exercise warm
    // sessions and eviction on the shared engine; mutated ones mostly
    // probe the rejection paths.
    ServiceLogConfig LogConf;
    LogConf.Seed = Seed + Run;
    LogConf.Requests = 2;
    LogConf.EndWithStats = (Run % 4) == 0;
    LogConf.EndWithShutdown = (Run % 8) == 0;
    for (const std::string &Line : generateServiceLog(LogConf)) {
      std::string Variants[2] = {Line, mutate(Line, Rng)};
      for (const std::string &Input : Variants) {
        writeStringToFile(CrashFile, Input, nullptr);
        std::string Failure;
        if (!runServiceLine(Input, &Failure)) {
          std::fprintf(stderr,
                       "FAIL at run %llu service line (seed %llu): %s\n"
                       "reproducer written to %s\n",
                       static_cast<unsigned long long>(Run),
                       static_cast<unsigned long long>(Seed), Failure.c_str(),
                       CrashFile.c_str());
          return 1;
        }
      }
    }
    if ((Run + 1) % 500 == 0)
      std::printf("ipcp_fuzz: %llu/%llu inputs ok\n",
                  static_cast<unsigned long long>(Run + 1),
                  static_cast<unsigned long long>(Runs));
  }
  std::remove(CrashFile.c_str());
  std::printf("ipcp_fuzz: %llu inputs, 0 failures\n",
              static_cast<unsigned long long>(Runs * (Mutate ? 2 : 1)));
  return 0;
}

#endif // IPCP_FUZZ_LIBFUZZER
