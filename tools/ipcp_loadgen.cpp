//===- tools/ipcp_loadgen.cpp - million-request service load harness ------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Replays generated `ipcp-service-v1` request logs (workload/
// ServiceWorkload) against the sharded analysis service at scale —
// millions of requests, configurable concurrency, open-loop arrival
// rates — and reports latency percentiles and saturation curves
// (docs/SCALING.md explains how to read them):
//
//   ipcp_loadgen [options]                  drive an in-process service
//   ipcp_loadgen --connect=SOCKET [options] drive a running ipcp_serverd
//
// workload shape:
//   --requests=N        analyze requests per run (default 1000)
//   --seed=S            workload seed (default 1)
//   --sessions=N        distinct sessions drawn per request (default 8)
//   --repeat-chance=P   percent repeating the previous program (default 70)
//   --batch-chance=P    percent folded into analyze-batch (default 10)
//   --programs=a,b,c    restrict to these suite programs (default: all)
//
// service shape (in-process mode; mirrors ipcp_serverd):
//   --shards=N --jobs=N --queue-limit=N --result-buffer=N
//   --max-sessions=N --cache-dir=DIR --scrub-timings
//
// load shape:
//   --concurrency=W     closed-loop: at most W request lines in flight
//                       (default 32)
//   --rate=R            open-loop: R requests/sec arrivals; latency is
//                       measured from the scheduled arrival, so queueing
//                       delay is charged honestly (no coordinated
//                       omission). 0 = closed-loop (default)
//   --saturation=K      sweep K open-loop steps from 0.5x to 1.25x of a
//                       calibrated max throughput, printing a curve
//   --overload          flood mode: submit as fast as possible and
//                       assert bounded busy backpressure (exit 1 when
//                       the bounds fail)
//   --capture=FILE      append every response line to FILE (byte-compare
//                       fodder for the cross-shard determinism checks)
//
// retry shape (client-side backoff, docs/SERVICE.md):
//   --retry-busy        resubmit busy-rejected lines with capped
//                       exponential backoff + seeded jitter; the retry
//                       histogram (completed lines by retries used) is
//                       printed and lands in BENCH_service.json
//   --retry-max=N --retry-base-ms=N --retry-cap-ms=N
//   --retry-jitter-seed=S
//
// robustness (docs/ROBUSTNESS.md):
//   --fault-plan=SPEC   deterministic fault injection inside the
//                       in-process service (or IPCP_FAULT_PLAN)
//   --durable-store     fsync content-store writes before rename
//   --help
//
// Results go to stdout and — when IPCP_BENCH_JSON_DIR is set — into
// BENCH_service.json via bench/BenchReport.h: p50/p99/p999 latency, a
// saturation curve, and the overload verdict.
//
// Exit codes: 0 ok, 1 usage error or failed overload/latency invariant,
// 2 socket failure.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchReport.h"
#include "core/ShardedService.h"
#include "support/FaultInjection.h"
#include "support/LineIO.h"
#include "workload/Programs.h"
#include "workload/ServiceWorkload.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

void printUsage() {
  std::printf(
      "usage: ipcp_loadgen [options]              (drive an in-process "
      "service)\n"
      "       ipcp_loadgen --connect=SOCKET [options]\n"
      "workload shape:\n"
      "  --requests=N       analyze requests per run (default 1000)\n"
      "  --seed=S           workload seed (default 1)\n"
      "  --sessions=N       distinct sessions (default 8)\n"
      "  --repeat-chance=P  percent repeating the previous program\n"
      "                     (default 70)\n"
      "  --batch-chance=P   percent folded into analyze-batch (default 10)\n"
      "  --programs=a,b,c   restrict to these suite programs (default all)\n"
      "service shape (in-process mode):\n"
      "  --shards=N --jobs=N --queue-limit=N --result-buffer=N\n"
      "  --max-sessions=N --cache-dir=DIR --scrub-timings\n"
      "load shape:\n"
      "  --concurrency=W    closed-loop in-flight request lines "
      "(default 32)\n"
      "  --rate=R           open-loop arrivals per second (0 = closed "
      "loop)\n"
      "  --saturation=K     K-step saturation sweep (0 = off)\n"
      "  --overload         flood; assert bounded busy backpressure\n"
      "  --capture=FILE     append every response line to FILE\n"
      "retry shape (client-side backoff for `busy` responses):\n"
      "  --retry-busy       resubmit busy-rejected lines with capped\n"
      "                     exponential backoff + seeded jitter; prints\n"
      "                     the per-request retry histogram\n"
      "  --retry-max=N      retries per request line (default 8)\n"
      "  --retry-base-ms=N  first backoff step (default 1)\n"
      "  --retry-cap-ms=N   backoff ceiling (default 64)\n"
      "  --retry-jitter-seed=S  jitter sequence seed (default 1)\n"
      "robustness:\n"
      "  --fault-plan=SPEC  deterministic fault injection for the\n"
      "                     in-process service (or IPCP_FAULT_PLAN; the\n"
      "                     flag wins; grammar in docs/ROBUSTNESS.md)\n"
      "  --durable-store    fsync store writes before rename\n"
      "  --help\n"
      "exit codes: 0 ok, 1 usage or failed invariant, 2 socket failure\n");
}

uint64_t parseUintValue(const std::string &Arg, size_t PrefixLen) {
  std::string Text = Arg.substr(PrefixLen);
  if (Text.empty() ||
      Text.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr,
                 "error: malformed value in '%s' (expect a non-negative "
                 "integer)\n",
                 Arg.c_str());
    std::exit(1);
  }
  errno = 0;
  unsigned long long Value = std::strtoull(Text.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    std::fprintf(stderr, "error: value out of range in '%s'\n", Arg.c_str());
    std::exit(1);
  }
  return Value;
}

using Clock = std::chrono::steady_clock;

uint64_t nsSince(Clock::time_point T0) {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - T0)
                      .count());
}

/// Where request lines go and response lines come from; one per run.
struct Backend {
  virtual ~Backend() = default;
  virtual void submit(const std::string &Line) = 0;
  /// In-order response lines; false once the run is finished and
  /// drained.
  virtual bool pop(std::string &Out) = 0;
  /// Called on the submitting thread after the last submit.
  virtual void endSubmit() = 0;
  virtual uint64_t peakBuffered() { return 0; }
};

/// Runs against a ShardedService in this process (the default).
struct InProcessBackend final : Backend {
  ShardedService &Svc;
  std::unique_ptr<ShardedService::Stream> St;
  explicit InProcessBackend(ShardedService &Svc)
      : Svc(Svc), St(Svc.openStream()) {}
  void submit(const std::string &Line) override { Svc.submitLine(*St, Line); }
  bool pop(std::string &Out) override { return St->popResponse(Out); }
  void endSubmit() override { Svc.finishStream(*St); }
  uint64_t peakBuffered() override { return St->peakBuffered(); }
};

/// Runs against an external ipcp_serverd over its unix socket. The
/// daemon answers every request line exactly once and in order, so the
/// reader stops when it has one response per submitted line.
struct SocketBackend final : Backend {
  int Fd;
  LineReader Reader;
  std::atomic<uint64_t> Submitted{0};
  std::atomic<bool> Done{false};
  uint64_t Popped = 0;
  explicit SocketBackend(int Fd) : Fd(Fd), Reader(Fd) {}
  void submit(const std::string &Line) override {
    std::string Error;
    if (!writeAllToFd(Fd, Line + "\n", &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      std::exit(2);
    }
    Submitted.fetch_add(1);
  }
  bool pop(std::string &Out) override {
    while (Popped == Submitted.load()) {
      if (Done.load() && Popped == Submitted.load())
        return false;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    std::string Line;
    if (!Reader.readLine(Line))
      return false;
    Out = Line + "\n";
    ++Popped;
    return true;
  }
  void endSubmit() override { Done.store(true); }
};

/// Client-side handling of `busy` responses (docs/SERVICE.md): resubmit
/// the rejected request line with capped exponential backoff and seeded
/// jitter. Deliberately the reference implementation of the protocol's
/// retry contract — `retryable` responses are safe to resubmit, and the
/// backoff keeps a herd of retries from re-flooding the queue it just
/// overflowed.
struct RetryConfig {
  bool Enabled = false;
  uint64_t Max = 8;        ///< retries per request line
  uint64_t BaseMs = 1;     ///< first backoff step
  uint64_t CapMs = 64;     ///< backoff ceiling
  uint64_t JitterSeed = 1; ///< jitter sequence seed (deterministic delays)
};

struct RunResult {
  uint64_t AnalyzeRequests = 0;
  uint64_t SubmittedLines = 0;
  uint64_t ResponseLines = 0;
  uint64_t Busy = 0;
  uint64_t Retries = 0;          ///< resubmissions scheduled
  uint64_t RetryExhausted = 0;   ///< lines still busy after Max retries
  std::vector<uint64_t> RetryHist; ///< completed lines by retries used
  uint64_t PeakBuffered = 0;
  double WallMs = 0;
  double P50Ms = 0, P99Ms = 0, P999Ms = 0;
  double AchievedRps = 0;
};

double percentile(std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Idx = size_t(Q * double(Sorted.size()) + 0.999999);
  return Sorted[std::min(Idx, Sorted.size()) - 1];
}

/// One measured replay: streams the workload into the backend — paced by
/// a closed-loop window or an open-loop arrival schedule — while a
/// collector thread times the in-order response stream. Latency is
/// submit-to-delivery (closed loop) or scheduled-arrival-to-delivery
/// (open loop, which charges queueing delay to the service instead of
/// silently omitting it).
RunResult runOnce(Backend &B, const ServiceLogConfig &Workload,
                  double RateRps, uint64_t Window, std::FILE *Capture,
                  const RetryConfig &Retry = RetryConfig()) {
  RunResult R;
  R.AnalyzeRequests = Workload.Requests;
  if (Retry.Enabled)
    R.RetryHist.assign(size_t(Retry.Max) + 1, 0);
  ServiceLogStream Stream(Workload);

  // One slot per request line; batching folds requests into fewer
  // lines, so Requests + trailers is an upper bound and the vector
  // never reallocates under the collector's feet. Retry mode can
  // resubmit every line Max times, so it scales the bound (and keeps
  // the submitted text around for resubmission).
  size_t MaxLines = (size_t(Workload.Requests) + 8) *
                    (Retry.Enabled ? size_t(Retry.Max) + 1 : 1);
  std::vector<uint64_t> StartNs(MaxLines, 0);
  std::vector<uint32_t> AttemptOf(Retry.Enabled ? MaxLines : 1, 0);
  std::vector<std::string> LineOf(Retry.Enabled ? MaxLines : 0);

  // Busy lines awaiting resubmission. The collector pushes (before it
  // counts the response as processed, so the submitter can never see
  // "all answered" while a retry is still pending); the submitter pops
  // entries once their backoff deadline passes.
  struct PendingRetry {
    std::string Line;
    uint32_t Attempt;
    uint64_t DueNs;
  };
  std::mutex RetryMutex;
  std::deque<PendingRetry> RetryQueue;
  std::atomic<uint64_t> SubmittedCount{0};
  std::atomic<uint64_t> ProcessedCount{0};

  // Jitter stream (xorshift64), advanced only on the collector thread:
  // for a fixed seed the k-th retry delay in the run is always the
  // same number, so chaos runs are replayable.
  uint64_t JitterState =
      Retry.JitterSeed ? Retry.JitterSeed : 0x9E3779B97F4A7C15ull;
  auto NextJitter = [&JitterState]() {
    JitterState ^= JitterState << 13;
    JitterState ^= JitterState >> 7;
    JitterState ^= JitterState << 17;
    return JitterState;
  };

  std::mutex WindowMutex;
  std::condition_variable WindowFree;
  uint64_t Outstanding = 0;

  std::vector<double> LatMs;
  LatMs.reserve(StartNs.size());
  Clock::time_point T0 = Clock::now();

  std::thread Collector([&] {
    std::string Line;
    uint64_t Seq = 0;
    while (B.pop(Line)) {
      uint64_t Now = nsSince(T0);
      LatMs.push_back(double(Now - StartNs[Seq]) / 1e6);
      bool Busy = Line.find("\"status\":\"busy\"") != std::string::npos;
      if (Busy)
        ++R.Busy;
      if (Retry.Enabled) {
        uint32_t Attempt = AttemptOf[Seq];
        if (Busy && Attempt < Retry.Max) {
          // Capped exponential backoff with jitter in the upper half:
          // delay in [cap/2, cap] of min(CapMs, BaseMs << Attempt).
          uint64_t Shift = std::min<uint64_t>(Attempt, 20);
          uint64_t Cap = std::min(Retry.CapMs,
                                  std::max<uint64_t>(1, Retry.BaseMs << Shift));
          uint64_t DelayMs = Cap / 2 + NextJitter() % (Cap / 2 + 1);
          {
            std::lock_guard<std::mutex> Lock(RetryMutex);
            RetryQueue.push_back(
                {LineOf[Seq], Attempt + 1, Now + DelayMs * 1000000});
          }
          ++R.Retries;
        } else if (Busy) {
          ++R.RetryExhausted;
          ++R.RetryHist[Attempt];
        } else {
          ++R.RetryHist[Attempt];
        }
      }
      if (Capture)
        std::fwrite(Line.data(), 1, Line.size(), Capture);
      ++Seq;
      {
        std::lock_guard<std::mutex> Lock(WindowMutex);
        if (Outstanding)
          --Outstanding;
      }
      WindowFree.notify_one();
      ProcessedCount.fetch_add(1);
    }
    R.ResponseLines = Seq;
  });

  std::string Line;
  uint64_t Seq = 0;
  uint64_t WorkIdx = 0; // workload lines only; drives open-loop pacing
  auto submitOne = [&](const std::string &L, uint32_t Attempt) {
    if (RateRps > 0 && Attempt == 0) {
      uint64_t Scheduled = uint64_t(double(WorkIdx) * 1e9 / RateRps);
      while (nsSince(T0) < Scheduled)
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min<uint64_t>((Scheduled - nsSince(T0)) / 1000 + 1, 1000)));
      StartNs[Seq] = Scheduled;
    } else if (RateRps > 0) {
      // Open-loop retry: the backoff already delayed it; charge from
      // the resubmission instant, outside the arrival schedule.
      StartNs[Seq] = nsSince(T0);
    } else {
      std::unique_lock<std::mutex> Lock(WindowMutex);
      WindowFree.wait(Lock, [&] { return Outstanding < Window; });
      ++Outstanding;
      Lock.unlock();
      StartNs[Seq] = nsSince(T0);
    }
    if (Retry.Enabled) {
      AttemptOf[Seq] = Attempt;
      LineOf[Seq] = L;
    }
    B.submit(L);
    ++Seq;
    SubmittedCount.fetch_add(1);
  };

  bool WorkloadDone = false;
  for (;;) {
    if (Retry.Enabled) {
      PendingRetry Due;
      bool HaveDue = false;
      {
        std::lock_guard<std::mutex> Lock(RetryMutex);
        if (!RetryQueue.empty() && RetryQueue.front().DueNs <= nsSince(T0)) {
          Due = std::move(RetryQueue.front());
          RetryQueue.pop_front();
          HaveDue = true;
        }
      }
      if (HaveDue) {
        submitOne(Due.Line, Due.Attempt);
        continue;
      }
    }
    if (!WorkloadDone) {
      if (Stream.next(Line)) {
        submitOne(Line, 0);
        ++WorkIdx;
        continue;
      }
      WorkloadDone = true;
    }
    if (!Retry.Enabled)
      break;
    // Workload exhausted: wait until every submission is answered and
    // no retry is pending (not-yet-due entries still count as pending).
    bool QueueEmpty;
    {
      std::lock_guard<std::mutex> Lock(RetryMutex);
      QueueEmpty = RetryQueue.empty();
    }
    if (QueueEmpty && ProcessedCount.load() == SubmittedCount.load())
      break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  R.SubmittedLines = Seq;
  B.endSubmit();
  Collector.join();

  R.WallMs = double(nsSince(T0)) / 1e6;
  R.PeakBuffered = B.peakBuffered();
  std::sort(LatMs.begin(), LatMs.end());
  R.P50Ms = percentile(LatMs, 0.50);
  R.P99Ms = percentile(LatMs, 0.99);
  R.P999Ms = percentile(LatMs, 0.999);
  R.AchievedRps =
      R.WallMs > 0 ? double(R.AnalyzeRequests) / (R.WallMs / 1e3) : 0;
  return R;
}

JsonValue runJson(const RunResult &R) {
  JsonValue Obj = JsonValue::object();
  Obj.set("analyze_requests", R.AnalyzeRequests);
  Obj.set("submitted_lines", R.SubmittedLines);
  Obj.set("response_lines", R.ResponseLines);
  Obj.set("busy", R.Busy);
  if (!R.RetryHist.empty()) {
    JsonValue Retry = JsonValue::object();
    Retry.set("scheduled", R.Retries);
    Retry.set("exhausted", R.RetryExhausted);
    JsonValue Hist = JsonValue::array();
    for (uint64_t Count : R.RetryHist)
      Hist.push(Count);
    Retry.set("histogram", std::move(Hist));
    Obj.set("retry", std::move(Retry));
  }
  Obj.set("wall_ms", R.WallMs);
  Obj.set("requests_per_sec", R.AchievedRps);
  Obj.set("peak_result_buffer", R.PeakBuffered);
  JsonValue Lat = JsonValue::object();
  Lat.set("p50_ms", R.P50Ms);
  Lat.set("p99_ms", R.P99Ms);
  Lat.set("p999_ms", R.P999Ms);
  Obj.set("latency", std::move(Lat));
  return Obj;
}

void printRun(const char *Name, const RunResult &R) {
  std::printf("  %-12s %9llu req  %10.1f req/s  p50 %8.3f ms  "
              "p99 %8.3f ms  p999 %8.3f ms  busy %llu\n",
              Name, (unsigned long long)R.AnalyzeRequests, R.AchievedRps,
              R.P50Ms, R.P99Ms, R.P999Ms, (unsigned long long)R.Busy);
  if (!R.RetryHist.empty()) {
    std::printf("  retry: scheduled %llu, exhausted %llu, histogram [",
                (unsigned long long)R.Retries,
                (unsigned long long)R.RetryExhausted);
    for (size_t I = 0; I != R.RetryHist.size(); ++I)
      std::printf("%s%llu", I ? " " : "",
                  (unsigned long long)R.RetryHist[I]);
    std::printf("]\n");
  }
}

} // namespace

int main(int argc, char **argv) {
  ShardedService::Config Service;
  Service.Jobs = 0;
  ServiceLogConfig Workload;
  Workload.Session = "load";
  Workload.SessionCount = 8;
  Workload.Requests = 1000;
  Workload.RepeatChance = 70;
  Workload.BatchChance = 10;
  Workload.EndWithStats = false;
  Workload.EndWithShutdown = false;
  uint64_t Concurrency = 32;
  double RateRps = 0;
  unsigned SaturationSteps = 0;
  bool Overload = false;
  RetryConfig Retry;
  std::string CapturePath, ConnectPath;
  std::string FaultPlan;
  bool HaveFaultPlan = false;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help") {
      printUsage();
      return 0;
    }
    if (Arg.rfind("--requests=", 0) == 0) {
      Workload.Requests = unsigned(parseUintValue(Arg, 11));
      continue;
    }
    if (Arg.rfind("--seed=", 0) == 0) {
      Workload.Seed = parseUintValue(Arg, 7);
      continue;
    }
    if (Arg.rfind("--sessions=", 0) == 0) {
      Workload.SessionCount = unsigned(parseUintValue(Arg, 11));
      if (Workload.SessionCount == 0) {
        std::fprintf(stderr, "error: --sessions must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--repeat-chance=", 0) == 0) {
      Workload.RepeatChance = unsigned(parseUintValue(Arg, 16));
      continue;
    }
    if (Arg.rfind("--batch-chance=", 0) == 0) {
      Workload.BatchChance = unsigned(parseUintValue(Arg, 15));
      continue;
    }
    if (Arg.rfind("--programs=", 0) == 0) {
      std::string List = Arg.substr(11);
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        std::string Name = List.substr(Pos, Comma - Pos);
        if (!Name.empty()) {
          if (!findSuiteProgram(Name)) {
            std::fprintf(stderr, "error: unknown suite program '%s'\n",
                         Name.c_str());
            return 1;
          }
          Workload.Suites.push_back(Name);
        }
        Pos = Comma + 1;
      }
      if (Workload.Suites.empty()) {
        std::fprintf(stderr, "error: --programs needs at least one name\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--shards=", 0) == 0) {
      Service.Shards = unsigned(parseUintValue(Arg, 9));
      if (Service.Shards == 0) {
        std::fprintf(stderr, "error: --shards must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--jobs=", 0) == 0) {
      Service.Jobs = unsigned(parseUintValue(Arg, 7));
      continue;
    }
    if (Arg.rfind("--queue-limit=", 0) == 0) {
      Service.QueueLimit = size_t(parseUintValue(Arg, 14));
      continue;
    }
    if (Arg.rfind("--result-buffer=", 0) == 0) {
      Service.ResultBuffer = size_t(parseUintValue(Arg, 16));
      continue;
    }
    if (Arg.rfind("--max-sessions=", 0) == 0) {
      Service.Engine.MaxSessions = unsigned(parseUintValue(Arg, 15));
      if (Service.Engine.MaxSessions == 0) {
        std::fprintf(stderr, "error: --max-sessions must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--cache-dir=", 0) == 0) {
      Service.Engine.CacheDir = Arg.substr(12);
      if (Service.Engine.CacheDir.empty()) {
        std::fprintf(stderr, "error: --cache-dir needs a directory name\n");
        return 1;
      }
      continue;
    }
    if (Arg == "--scrub-timings") {
      Service.Engine.ScrubTimings = true;
      continue;
    }
    if (Arg.rfind("--concurrency=", 0) == 0) {
      Concurrency = parseUintValue(Arg, 14);
      if (Concurrency == 0) {
        std::fprintf(stderr, "error: --concurrency must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--rate=", 0) == 0) {
      RateRps = double(parseUintValue(Arg, 7));
      continue;
    }
    if (Arg.rfind("--saturation=", 0) == 0) {
      SaturationSteps = unsigned(parseUintValue(Arg, 13));
      continue;
    }
    if (Arg == "--overload") {
      Overload = true;
      continue;
    }
    if (Arg.rfind("--capture=", 0) == 0) {
      CapturePath = Arg.substr(10);
      continue;
    }
    if (Arg == "--retry-busy") {
      Retry.Enabled = true;
      continue;
    }
    if (Arg.rfind("--retry-max=", 0) == 0) {
      Retry.Max = parseUintValue(Arg, 12);
      if (Retry.Max > 32) {
        std::fprintf(stderr, "error: --retry-max must be at most 32\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--retry-base-ms=", 0) == 0) {
      Retry.BaseMs = parseUintValue(Arg, 16);
      continue;
    }
    if (Arg.rfind("--retry-cap-ms=", 0) == 0) {
      Retry.CapMs = parseUintValue(Arg, 15);
      if (Retry.CapMs == 0) {
        std::fprintf(stderr, "error: --retry-cap-ms must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--retry-jitter-seed=", 0) == 0) {
      Retry.JitterSeed = parseUintValue(Arg, 20);
      continue;
    }
    if (Arg.rfind("--fault-plan=", 0) == 0) {
      FaultPlan = Arg.substr(13);
      HaveFaultPlan = true;
      continue;
    }
    if (Arg == "--durable-store") {
      Service.Engine.DurableStore = true;
      continue;
    }
    if (Arg.rfind("--connect=", 0) == 0) {
      ConnectPath = Arg.substr(10);
      continue;
    }
    std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
    printUsage();
    return 1;
  }

  // Fault plan: the flag wins over IPCP_FAULT_PLAN (tests exercising
  // the env path run without the flag). Only meaningful in-process —
  // an external daemon owns its own plan.
  {
    std::string Error;
    bool PlanOk = HaveFaultPlan ? faultInjector().installPlan(FaultPlan, &Error)
                                : installFaultPlanFromEnv(&Error);
    if (!PlanOk) {
      std::fprintf(stderr, "error: malformed value in fault plan: %s\n",
                   Error.c_str());
      return 1;
    }
  }

  std::FILE *Capture = nullptr;
  if (!CapturePath.empty()) {
    Capture = std::fopen(CapturePath.c_str(), "wb");
    if (!Capture) {
      std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                   CapturePath.c_str());
      return 1;
    }
  }

  // Build the backend: a connected socket, or an in-process service.
  std::unique_ptr<ShardedService> Svc;
  int SockFd = -1;
  if (!ConnectPath.empty()) {
    std::string Error;
    SockFd = connectUnixSocket(ConnectPath, &Error);
    if (SockFd < 0) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
  } else {
    Service.Engine.SuiteResolver = [](const std::string &Name,
                                      std::string &SourceOut) {
      const SuiteProgram *Prog = findSuiteProgram(Name);
      if (!Prog)
        return false;
      SourceOut = Prog->Source;
      return true;
    };
    Svc = std::make_unique<ShardedService>(Service);
  }
  auto makeBackend = [&]() -> std::unique_ptr<Backend> {
    if (SockFd >= 0)
      return std::make_unique<SocketBackend>(SockFd);
    return std::make_unique<InProcessBackend>(*Svc);
  };

  std::printf("ipcp_loadgen: %u requests, %u sessions, shards=%u, "
              "queue-limit=%zu%s\n",
              Workload.Requests, Workload.SessionCount,
              SockFd >= 0 ? 0 : Service.Shards, Service.QueueLimit,
              SockFd >= 0 ? " (external daemon)" : "");

  JsonValue Doc = JsonValue::object();
  JsonValue ConfJson = JsonValue::object();
  ConfJson.set("requests", uint64_t(Workload.Requests));
  ConfJson.set("sessions", uint64_t(Workload.SessionCount));
  ConfJson.set("seed", Workload.Seed);
  ConfJson.set("repeat_chance", uint64_t(Workload.RepeatChance));
  ConfJson.set("batch_chance", uint64_t(Workload.BatchChance));
  ConfJson.set("shards", uint64_t(SockFd >= 0 ? 0 : Service.Shards));
  ConfJson.set("queue_limit", uint64_t(Service.QueueLimit));
  ConfJson.set("result_buffer", uint64_t(Service.ResultBuffer));
  ConfJson.set("concurrency", Concurrency);
  ConfJson.set("rate_rps", RateRps);
  ConfJson.set("external_daemon", SockFd >= 0);
  if (Retry.Enabled) {
    JsonValue RetryJson = JsonValue::object();
    RetryJson.set("max", Retry.Max);
    RetryJson.set("base_ms", Retry.BaseMs);
    RetryJson.set("cap_ms", Retry.CapMs);
    RetryJson.set("jitter_seed", Retry.JitterSeed);
    ConfJson.set("retry_busy", std::move(RetryJson));
  }
  if (faultInjector().active())
    ConfJson.set("fault_plan", faultInjector().planSpec());
  Doc.set("config", std::move(ConfJson));

  bool Ok = true;

  if (Overload) {
    // Flood: no pacing window, so arrivals outrun the admission gate
    // and the service must answer every line — mostly with `busy` —
    // while the reorder buffer stays within its bound.
    std::unique_ptr<Backend> B = makeBackend();
    RunResult R =
        runOnce(*B, Workload, 0, uint64_t(1) << 40, Capture, Retry);
    printRun("overload", R);
    uint64_t BufferBound = Service.ResultBuffer ? Service.ResultBuffer + 1 : 0;
    bool AllAnswered =
        R.ResponseLines > 0 && R.ResponseLines == R.SubmittedLines;
    bool SawBusy = R.Busy > 0;
    bool Bounded = BufferBound == 0 || R.PeakBuffered <= BufferBound;
    if (!AllAnswered)
      std::fprintf(stderr,
                   "overload: FAILED - %llu of %llu lines answered\n",
                   (unsigned long long)R.ResponseLines,
                   (unsigned long long)R.SubmittedLines);
    if (!SawBusy)
      std::fprintf(stderr,
                   "overload: FAILED - flood produced no busy responses "
                   "(queue-limit too high?)\n");
    if (!Bounded)
      std::fprintf(stderr,
                   "overload: FAILED - reorder buffer peak %llu exceeds "
                   "bound %llu\n",
                   (unsigned long long)R.PeakBuffered,
                   (unsigned long long)BufferBound);
    Ok = AllAnswered && SawBusy && Bounded;
    std::printf("  overload invariants: %s (busy %llu, peak buffer %llu)\n",
                Ok ? "ok" : "FAILED", (unsigned long long)R.Busy,
                (unsigned long long)R.PeakBuffered);
    JsonValue OJson = runJson(R);
    OJson.set("bounded", Bounded);
    OJson.set("saw_busy", SawBusy);
    Doc.set("overload", std::move(OJson));
  } else if (SaturationSteps > 0) {
    // Calibrate closed-loop, then sweep open-loop arrival rates around
    // the measured maximum; the curve's knee is the capacity number
    // docs/SCALING.md plans against.
    std::unique_ptr<Backend> Cal = makeBackend();
    RunResult Max = runOnce(*Cal, Workload, 0, Concurrency, nullptr);
    printRun("calibrate", Max);
    Doc.set("calibration", runJson(Max));
    JsonValue Curve = JsonValue::array();
    for (unsigned I = 0; I != SaturationSteps; ++I) {
      double Fraction =
          SaturationSteps == 1
              ? 1.0
              : 0.5 + 0.75 * double(I) / double(SaturationSteps - 1);
      double Target = std::max(1.0, Max.AchievedRps * Fraction);
      std::unique_ptr<Backend> B = makeBackend();
      RunResult R = runOnce(*B, Workload, Target, Concurrency, nullptr);
      char Name[32];
      std::snprintf(Name, sizeof Name, "%.2fx", Fraction);
      printRun(Name, R);
      JsonValue Step = runJson(R);
      Step.set("fraction", Fraction);
      Step.set("target_rps", Target);
      Curve.push(std::move(Step));
    }
    Doc.set("saturation", std::move(Curve));
  } else {
    std::unique_ptr<Backend> B = makeBackend();
    RunResult R = runOnce(*B, Workload, RateRps, Concurrency, Capture, Retry);
    printRun(RateRps > 0 ? "open-loop" : "closed-loop", R);
    // Every submitted line must come back — under fault injection the
    // answer may be an error envelope, but silence is a failure.
    Ok = R.ResponseLines > 0 && R.ResponseLines == R.SubmittedLines;
    if (!Ok)
      std::fprintf(stderr, "load: FAILED - %llu of %llu lines answered\n",
                   (unsigned long long)R.ResponseLines,
                   (unsigned long long)R.SubmittedLines);
    Doc.set("load", runJson(R));
  }

  if (Capture)
    std::fclose(Capture);
  if (Svc) {
    // Persist dirty sessions so a later run (or another shard count)
    // can warm-start from the shared store.
    Svc->shutdownFlush();
  }
  if (SockFd >= 0)
    closeFd(SockFd);

  // Fault totals after shutdownFlush so eviction-path store writes are
  // in the count; CI greps the "faults injected" line.
  if (faultInjector().active()) {
    FaultInjector::Totals T = faultInjector().totals();
    std::printf("  faults injected: %llu (of %llu checks)\n",
                (unsigned long long)T.Injected, (unsigned long long)T.Checked);
    Doc.set("faults", faultInjector().statsJson());
  }

  Doc.set("ok", Ok);
  benchReport("service", std::move(Doc));
  return Ok ? 0 : 1;
}
