//===- tools/ipcp_serverd.cpp - batched analysis daemon -------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Analysis as a service: a long-lived daemon that keeps the summary
// cache resident and answers newline-delimited JSON requests
// ("ipcp-service-v1", documented field by field in docs/SERVICE.md):
//
//   ipcp_serverd [options]                 serve stdin -> stdout
//   ipcp_serverd --socket=PATH [options]   serve a unix domain socket
//
//   --jobs=N           worker threads (default: hardware concurrency)
//   --queue-limit=N    max in-flight analyses before `busy` (default 256;
//                      0 rejects everything — the backpressure tests)
//   --cache-dir=DIR    write-behind disk tier for session caches
//   --max-sessions=N   resident session caches before LRU eviction
//   --scrub-timings    zero wall-clock fields in every response
//   --limit-parse-depth=N  --limit-tokens=N  --limit-ast-nodes=N
//   --limit-ir-insts=N     --limit-prop-evals=N --deadline-ms=N
//                      default per-request budgets; a request's "limits"
//                      can tighten but never exceed them
//   --emit-sample-log=N [--sample-seed=S]
//                      print N generated analyze requests (plus stats and
//                      shutdown) to stdout and exit — replay fodder for
//                      the CI smoke job and bench_service
//   --help
//
// Request lines are answered in request order (responses carry "seq");
// analyses run concurrently on the pool, and a per-session turnstile
// replays the serial warm/cold order exactly, so the byte stream a
// concurrent daemon emits is identical to a --jobs=1 run. `stats`,
// `flush-cache`, and `shutdown` are barriers: they wait for every
// in-flight analysis before executing.
//
// Exit codes: 0 clean (EOF or shutdown request), 1 usage error,
// 2 socket setup or stdin read failure, 4 a response could not be
// written.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "core/ServiceEngine.h"
#include "support/BoundedQueue.h"
#include "support/LineIO.h"
#include "support/ThreadPool.h"
#include "workload/Programs.h"
#include "workload/ServiceWorkload.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace ipcp;

namespace {

void printUsage() {
  std::printf(
      "usage: ipcp_serverd [options]              (serve stdin -> stdout)\n"
      "       ipcp_serverd --socket=PATH [options]\n"
      "requests: one JSON object per line; ops analyze, analyze-batch,\n"
      "          stats, flush-cache, shutdown (see docs/SERVICE.md)\n"
      "  --jobs=N           worker threads (default: hardware concurrency)\n"
      "  --queue-limit=N    max in-flight analyses before `busy`\n"
      "                     (default 256; 0 rejects every analyze)\n"
      "  --cache-dir=DIR    write-behind disk tier for session caches\n"
      "  --max-sessions=N   resident session caches before LRU eviction\n"
      "                     (default 64)\n"
      "  --scrub-timings    zero wall-clock fields in every response\n"
      "  --emit-sample-log=N  print N generated requests and exit\n"
      "  --sample-seed=S      seed for --emit-sample-log (default 1)\n"
      "  --help\n"
      "default per-request budgets (0 = unlimited; a request's \"limits\"\n"
      "object can tighten but never exceed them):\n"
      "  --limit-parse-depth=N  parser recursion depth (default 512)\n"
      "  --limit-tokens=N       tokens per source buffer\n"
      "  --limit-ast-nodes=N    AST nodes the parser may allocate\n"
      "  --limit-ir-insts=N     IR instructions entering the analysis\n"
      "  --limit-prop-evals=N   jump-function evaluations per solve\n"
      "  --deadline-ms=N        wall-clock deadline per request\n"
      "exit codes: 0 clean shutdown or EOF, 1 usage, 2 socket/stdin\n"
      "            failure, 4 response write failed\n");
}

/// Parses the numeric value of --NAME=N flags; exits 1 on malformed
/// input (same contract as the driver's budget flags).
uint64_t parseUintValue(const std::string &Arg, size_t PrefixLen) {
  std::string Text = Arg.substr(PrefixLen);
  if (Text.empty() ||
      Text.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr,
                 "error: malformed value in '%s' (expect a non-negative "
                 "integer)\n",
                 Arg.c_str());
    std::exit(1);
  }
  errno = 0;
  unsigned long long Value = std::strtoull(Text.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    std::fprintf(stderr, "error: value out of range in '%s'\n", Arg.c_str());
    std::exit(1);
  }
  return Value;
}

/// Shared in-flight state of one analyze-batch: items land in their
/// slots in any order; whoever finishes last assembles the response.
struct BatchState {
  std::vector<JsonValue> Items;
  std::atomic<size_t> Remaining{0};
  uint64_t Seq = 0;
  JsonValue Id;
  bool HasId = false;
};

/// Everything one serve loop (stdin, or one socket connection) shares
/// with its pool tasks and emitter thread.
struct Serve {
  Serve(ServiceEngine &Engine, ThreadPool &Pool, AdmissionGate &Gate)
      : Engine(Engine), Pool(Pool), Gate(Gate) {}

  ServiceEngine &Engine;
  ThreadPool &Pool;
  AdmissionGate &Gate;
  OrderedResultQueue<std::string> Results;
  std::atomic<bool> WriteFailed{false};
  std::string WriteError;
};

void pushEnvelope(Serve &S, uint64_t Seq, const JsonValue *Id,
                  JsonValue Body) {
  S.Results.push(Seq, buildServiceEnvelope(Seq, Id, std::move(Body)).dump() +
                          "\n");
}

JsonValue errorBody(const std::string &Status, const std::string &Code,
                    const std::string &Message) {
  JsonValue Body = JsonValue::object();
  Body.set("status", Status);
  Body.set("error", serviceErrorObject(Code, Message));
  return Body;
}

/// Serves one request stream until EOF or a shutdown request. Returns
/// true when the client asked for shutdown (the daemon should exit its
/// accept loop too, not just this connection).
bool serveStream(int InFd, int OutFd, Serve &S, bool *ReadFailed) {
  LineReader Reader(InFd);
  std::thread Emitter([&] {
    std::string Line;
    while (S.Results.pop(Line)) {
      std::string Error;
      if (!S.WriteFailed.load() && !writeAllToFd(OutFd, Line, &Error)) {
        S.WriteError = Error;
        S.WriteFailed.store(true); // keep draining so producers finish
      }
    }
  });

  bool ShutdownRequested = false;
  uint64_t NextSeq = 0;
  std::string Line;
  while (!ShutdownRequested && Reader.readLine(Line)) {
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue; // blank keep-alive lines carry no request
    uint64_t Seq = NextSeq++;
    ServiceRequest Req;
    std::string Code, Error;
    if (!S.Engine.parseRequestLine(Line, Req, &Code, &Error)) {
      pushEnvelope(S, Seq, nullptr, errorBody("error", Code, Error));
      continue;
    }
    switch (Req.Op) {
    case ServiceRequest::Kind::Analyze: {
      if (!S.Gate.tryAcquire()) {
        S.Engine.noteBusy();
        pushEnvelope(S, Seq, Req.HasId ? &Req.Id : nullptr,
                     errorBody("busy", "busy",
                               "request queue is full; retry later"));
        break;
      }
      ServiceEngine::SessionTurn Turn = S.Engine.reserveTurn(Req);
      S.Pool.submit([&S, Seq, Req = std::move(Req), Turn]() mutable {
        JsonValue Body = S.Engine.analyze(Req, std::move(Turn));
        pushEnvelope(S, Seq, Req.HasId ? &Req.Id : nullptr, std::move(Body));
        S.Gate.release();
      });
      break;
    }
    case ServiceRequest::Kind::AnalyzeBatch: {
      size_t N = Req.Batch.size();
      if (!S.Gate.tryAcquire(N)) {
        S.Engine.noteBusy();
        pushEnvelope(S, Seq, Req.HasId ? &Req.Id : nullptr,
                     errorBody("busy", "busy",
                               "request queue is full; retry later"));
        break;
      }
      S.Engine.noteBatch();
      auto State = std::make_shared<BatchState>();
      State->Items.resize(N);
      State->Remaining.store(N);
      State->Seq = Seq;
      State->Id = Req.Id;
      State->HasId = Req.HasId;
      // Reserve every item's session turn here, in item order, so the
      // batch replays the serial warm/cold sequence no matter how the
      // pool schedules the items.
      for (size_t I = 0; I != N; ++I) {
        ServiceEngine::SessionTurn Turn = S.Engine.reserveTurn(Req.Batch[I]);
        S.Pool.submit([&S, State, I, Item = Req.Batch[I], Turn]() mutable {
          State->Items[I] =
              S.Engine.analyzeBatchItem(Item, I, std::move(Turn));
          S.Gate.release();
          if (State->Remaining.fetch_sub(1) != 1)
            return;
          JsonValue Responses = JsonValue::array();
          for (JsonValue &R : State->Items)
            Responses.push(std::move(R));
          JsonValue Body = JsonValue::object();
          Body.set("status", "ok");
          Body.set("responses", std::move(Responses));
          pushEnvelope(S, State->Seq, State->HasId ? &State->Id : nullptr,
                       std::move(Body));
        });
      }
      break;
    }
    case ServiceRequest::Kind::Stats:
      // Control operations are barriers: every admitted analysis
      // finishes first, so the counters are a function of the request
      // stream, not of scheduling.
      S.Pool.wait();
      pushEnvelope(S, Seq, Req.HasId ? &Req.Id : nullptr,
                   S.Engine.statsBody());
      break;
    case ServiceRequest::Kind::FlushCache:
      S.Pool.wait();
      pushEnvelope(S, Seq, Req.HasId ? &Req.Id : nullptr,
                   S.Engine.flushCacheBody());
      break;
    case ServiceRequest::Kind::Shutdown: {
      S.Pool.wait();
      JsonValue Body = JsonValue::object();
      Body.set("status", "ok");
      Body.set("persisted", uint64_t(S.Engine.shutdownFlush()));
      pushEnvelope(S, Seq, Req.HasId ? &Req.Id : nullptr, std::move(Body));
      ShutdownRequested = true;
      break;
    }
    }
  }

  S.Pool.wait();
  S.Results.close();
  Emitter.join();
  if (ReadFailed)
    *ReadFailed = Reader.readFailed();
  return ShutdownRequested;
}

} // namespace

int main(int argc, char **argv) {
  ServiceEngine::Config Conf;
  std::string SocketPath;
  unsigned Jobs = ThreadPool::defaultConcurrency();
  size_t QueueLimit = 256;
  bool EmitSample = false;
  ServiceLogConfig SampleConf;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help") {
      printUsage();
      return 0;
    }
    if (Arg == "--socket=") {
      std::fprintf(stderr, "error: --socket needs a path\n");
      return 1;
    }
    if (Arg.rfind("--socket=", 0) == 0) {
      SocketPath = Arg.substr(9);
      continue;
    }
    if (Arg.rfind("--jobs=", 0) == 0) {
      Jobs = unsigned(parseUintValue(Arg, 7));
      if (Jobs == 0) {
        std::fprintf(stderr, "error: --jobs must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--queue-limit=", 0) == 0) {
      QueueLimit = size_t(parseUintValue(Arg, 14));
      continue;
    }
    if (Arg == "--cache-dir=") {
      std::fprintf(stderr, "error: --cache-dir needs a directory name\n");
      return 1;
    }
    if (Arg.rfind("--cache-dir=", 0) == 0) {
      Conf.CacheDir = Arg.substr(12);
      continue;
    }
    if (Arg.rfind("--max-sessions=", 0) == 0) {
      Conf.MaxSessions = unsigned(parseUintValue(Arg, 15));
      if (Conf.MaxSessions == 0) {
        std::fprintf(stderr, "error: --max-sessions must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg == "--scrub-timings") {
      Conf.ScrubTimings = true;
      continue;
    }
    if (Arg.rfind("--limit-parse-depth=", 0) == 0) {
      uint64_t V = parseUintValue(Arg, 20);
      if (V == 0 || V > 1u << 20) {
        std::fprintf(stderr,
                     "error: --limit-parse-depth must be in [1, 1048576]\n");
        return 1;
      }
      Conf.DefaultLimits.MaxParseDepth = unsigned(V);
      continue;
    }
    if (Arg.rfind("--limit-tokens=", 0) == 0) {
      Conf.DefaultLimits.MaxTokens = parseUintValue(Arg, 15);
      continue;
    }
    if (Arg.rfind("--limit-ast-nodes=", 0) == 0) {
      Conf.DefaultLimits.MaxAstNodes = parseUintValue(Arg, 18);
      continue;
    }
    if (Arg.rfind("--limit-ir-insts=", 0) == 0) {
      Conf.DefaultLimits.MaxIRInstructions = parseUintValue(Arg, 17);
      continue;
    }
    if (Arg.rfind("--limit-prop-evals=", 0) == 0) {
      Conf.DefaultLimits.MaxPropagationEvals = parseUintValue(Arg, 19);
      continue;
    }
    if (Arg.rfind("--deadline-ms=", 0) == 0) {
      Conf.DefaultLimits.DeadlineMs = parseUintValue(Arg, 14);
      continue;
    }
    if (Arg.rfind("--emit-sample-log=", 0) == 0) {
      EmitSample = true;
      SampleConf.Requests = unsigned(parseUintValue(Arg, 18));
      continue;
    }
    if (Arg.rfind("--sample-seed=", 0) == 0) {
      SampleConf.Seed = parseUintValue(Arg, 14);
      continue;
    }
    std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
    printUsage();
    return 1;
  }

  if (EmitSample) {
    for (const std::string &Line : generateServiceLog(SampleConf))
      std::printf("%s\n", Line.c_str());
    return 0;
  }

  Conf.SuiteResolver = [](const std::string &Name, std::string &SourceOut) {
    const SuiteProgram *Prog = findSuiteProgram(Name);
    if (!Prog)
      return false;
    SourceOut = Prog->Source;
    return true;
  };

  ServiceEngine Engine(std::move(Conf));
  ThreadPool Pool(Jobs);
  AdmissionGate Gate(QueueLimit);

  if (SocketPath.empty()) {
    Serve S(Engine, Pool, Gate);
    bool ReadFailed = false;
    serveStream(0, 1, S, &ReadFailed);
    if (S.WriteFailed.load()) {
      std::fprintf(stderr, "error: %s\n", S.WriteError.c_str());
      return 4;
    }
    if (ReadFailed) {
      std::fprintf(stderr, "error: reading stdin failed\n");
      return 2;
    }
    return 0;
  }

  std::string Error;
  int ListenFd = listenUnixSocket(SocketPath, &Error);
  if (ListenFd < 0) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  std::fprintf(stderr, "ipcp_serverd: listening on %s\n", SocketPath.c_str());
  bool Shutdown = false;
  int Exit = 0;
  while (!Shutdown) {
    int Conn = acceptUnixConnection(ListenFd, &Error);
    if (Conn < 0) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      Exit = 2;
      break;
    }
    // Connections are served one at a time (requests inside a
    // connection still analyze concurrently); the response stream of a
    // connection is self-contained, with seq restarting at 0.
    Serve S(Engine, Pool, Gate);
    Shutdown = serveStream(Conn, Conn, S, nullptr);
    closeFd(Conn);
    if (S.WriteFailed.load())
      std::fprintf(stderr, "warning: client write failed: %s\n",
                   S.WriteError.c_str());
  }
  closeFd(ListenFd);
  std::remove(SocketPath.c_str());
  return Exit;
}
