//===- tools/ipcp_serverd.cpp - sharded batched analysis daemon -----------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Analysis as a service: a long-lived daemon that keeps summary caches
// resident across a pool of worker shards and answers newline-delimited
// JSON requests ("ipcp-service-v1", documented field by field in
// docs/SERVICE.md; the sharding design in docs/SCALING.md):
//
//   ipcp_serverd [options]                 serve stdin -> stdout
//   ipcp_serverd --socket=PATH [options]   serve a unix domain socket
//
//   --shards=N         worker shards; sessions hash to shards, each
//                      shard owns its resident caches (default 1)
//   --jobs=N           worker threads across all shards (default:
//                      hardware concurrency; each shard gets at least 1)
//   --queue-limit=N    max in-flight analyses before `busy` (default 256;
//                      0 rejects everything — the backpressure tests)
//   --result-buffer=N  max buffered out-of-order responses before
//                      workers block on the emitter (default 1024;
//                      0 = unbounded)
//   --cache-dir=DIR    content-addressed write-behind tier shared by
//                      every shard
//   --max-sessions=N   resident session caches per cache bucket (16
//                      fixed buckets service-wide) before LRU eviction
//   --scrub-timings    zero wall-clock fields in every response (and the
//                      timing-dependent queue gauges in stats)
//   --limit-parse-depth=N  --limit-tokens=N  --limit-ast-nodes=N
//   --limit-ir-insts=N     --limit-prop-evals=N --deadline-ms=N
//                      default per-request budgets; a request's "limits"
//                      can tighten but never exceed them
//   --durable-store    fsync-before-rename store writes (docs/ROBUSTNESS.md)
//   --scrub-store=DIR  recovery-scrub a store, print the JSON report, exit
//   --fault-plan=SPEC  deterministic fault injection (or IPCP_FAULT_PLAN)
//   --emit-sample-log=N [--sample-seed=S]
//                      print N generated analyze requests (plus stats and
//                      shutdown) to stdout and exit — replay fodder for
//                      the CI smoke job and bench_service
//   --help
//
// Request lines are answered in request order (responses carry "seq");
// analyses run concurrently on the shard pools, and a per-session
// turnstile replays the serial warm/cold order exactly, so the byte
// stream a concurrent daemon emits is identical to a --jobs=1 run — and,
// stats bodies aside, identical across --shards values too. `stats`,
// `flush-cache`, and `shutdown` are barriers: they wait for every
// in-flight analysis on every shard before executing.
//
// Exit codes: 0 clean (EOF or shutdown request), 1 usage error,
// 2 socket setup or stdin read failure, 4 a response could not be
// written.
//
//===----------------------------------------------------------------------===//

#include "core/ShardedService.h"
#include "support/ContentStore.h"
#include "support/FaultInjection.h"
#include "support/LineIO.h"
#include "workload/Programs.h"
#include "workload/ServiceWorkload.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

using namespace ipcp;

namespace {

void printUsage() {
  std::printf(
      "usage: ipcp_serverd [options]              (serve stdin -> stdout)\n"
      "       ipcp_serverd --socket=PATH [options]\n"
      "requests: one JSON object per line; ops analyze, optimize,\n"
      "          analyze-batch, stats, flush-cache, shutdown\n"
      "          (see docs/SERVICE.md)\n"
      "  --shards=N         worker shards; sessions hash to shards\n"
      "                     (default 1; see docs/SCALING.md)\n"
      "  --jobs=N           worker threads across all shards (default:\n"
      "                     hardware concurrency)\n"
      "  --queue-limit=N    max in-flight analyses before `busy`\n"
      "                     (default 256; 0 rejects every analyze)\n"
      "  --result-buffer=N  max buffered out-of-order responses before\n"
      "                     workers block (default 1024; 0 = unbounded)\n"
      "  --cache-dir=DIR    content-addressed write-behind tier shared\n"
      "                     by every shard\n"
      "  --max-sessions=N   resident session caches per cache bucket\n"
      "                     (16 fixed buckets) before LRU eviction\n"
      "                     (default 64)\n"
      "  --scrub-timings    zero wall-clock fields in every response\n"
      "  --durable-store    fsync store writes before rename (crash-safe\n"
      "                     across power loss, not just process death)\n"
      "  --scrub-store=DIR  run the recovery scrub over a store and print\n"
      "                     the report as JSON, then exit (0 ok, 2 when a\n"
      "                     repair failed; see docs/ROBUSTNESS.md)\n"
      "  --fault-plan=SPEC  install a deterministic fault-injection plan\n"
      "                     (also via IPCP_FAULT_PLAN; the flag wins;\n"
      "                     grammar in docs/ROBUSTNESS.md)\n"
      "  --emit-sample-log=N  print N generated requests and exit\n"
      "  --sample-seed=S      seed for --emit-sample-log (default 1)\n"
      "  --help\n"
      "default per-request budgets (0 = unlimited; a request's \"limits\"\n"
      "object can tighten but never exceed them):\n"
      "  --limit-parse-depth=N  parser recursion depth (default 512)\n"
      "  --limit-tokens=N       tokens per source buffer\n"
      "  --limit-ast-nodes=N    AST nodes the parser may allocate\n"
      "  --limit-ir-insts=N     IR instructions entering the analysis\n"
      "  --limit-prop-evals=N   jump-function evaluations per solve\n"
      "  --deadline-ms=N        wall-clock deadline per request\n"
      "exit codes: 0 clean shutdown or EOF, 1 usage, 2 socket/stdin\n"
      "            failure, 4 response write failed\n");
}

/// Parses the numeric value of --NAME=N flags; exits 1 on malformed
/// input (same contract as the driver's budget flags).
uint64_t parseUintValue(const std::string &Arg, size_t PrefixLen) {
  std::string Text = Arg.substr(PrefixLen);
  if (Text.empty() ||
      Text.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr,
                 "error: malformed value in '%s' (expect a non-negative "
                 "integer)\n",
                 Arg.c_str());
    std::exit(1);
  }
  errno = 0;
  unsigned long long Value = std::strtoull(Text.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    std::fprintf(stderr, "error: value out of range in '%s'\n", Arg.c_str());
    std::exit(1);
  }
  return Value;
}

/// Serves one request stream until EOF or a shutdown request: a reader
/// loop feeding the sharded service, and an emitter thread writing the
/// in-order response stream. Returns true when the client asked for
/// shutdown (the daemon should exit its accept loop too, not just this
/// connection).
bool serveStream(int InFd, int OutFd, ShardedService &Service,
                 bool *ReadFailed, bool &WriteFailed,
                 std::string &WriteError) {
  std::unique_ptr<ShardedService::Stream> St = Service.openStream();
  std::atomic<bool> WriteFailedFlag{false};
  std::thread Emitter([&] {
    std::string Line;
    while (St->popResponse(Line)) {
      std::string Error;
      if (!WriteFailedFlag.load() && !writeAllToFd(OutFd, Line, &Error)) {
        WriteError = Error;
        WriteFailedFlag.store(true); // keep draining so producers finish
      }
    }
  });

  LineReader Reader(InFd);
  bool ShutdownRequested = false;
  std::string Line;
  while (!ShutdownRequested && Reader.readLine(Line))
    ShutdownRequested = Service.submitLine(*St, Line);

  Service.finishStream(*St);
  Emitter.join();
  if (ReadFailed)
    *ReadFailed = Reader.readFailed();
  WriteFailed = WriteFailedFlag.load();
  return ShutdownRequested;
}

} // namespace

int main(int argc, char **argv) {
  // A client that disappears mid-response must surface as a write error
  // (exit code 4), not kill the daemon with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  ShardedService::Config Conf;
  Conf.Jobs = 0; // hardware concurrency
  std::string SocketPath;
  std::string ScrubStoreDir;
  std::string FaultPlan;
  bool HaveFaultPlan = false;
  bool EmitSample = false;
  ServiceLogConfig SampleConf;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help") {
      printUsage();
      return 0;
    }
    if (Arg == "--socket=") {
      std::fprintf(stderr, "error: --socket needs a path\n");
      return 1;
    }
    if (Arg.rfind("--socket=", 0) == 0) {
      SocketPath = Arg.substr(9);
      continue;
    }
    if (Arg.rfind("--shards=", 0) == 0) {
      Conf.Shards = unsigned(parseUintValue(Arg, 9));
      if (Conf.Shards == 0) {
        std::fprintf(stderr, "error: --shards must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--jobs=", 0) == 0) {
      Conf.Jobs = unsigned(parseUintValue(Arg, 7));
      if (Conf.Jobs == 0) {
        std::fprintf(stderr, "error: --jobs must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--queue-limit=", 0) == 0) {
      Conf.QueueLimit = size_t(parseUintValue(Arg, 14));
      continue;
    }
    if (Arg.rfind("--result-buffer=", 0) == 0) {
      Conf.ResultBuffer = size_t(parseUintValue(Arg, 16));
      continue;
    }
    if (Arg == "--cache-dir=") {
      std::fprintf(stderr, "error: --cache-dir needs a directory name\n");
      return 1;
    }
    if (Arg.rfind("--cache-dir=", 0) == 0) {
      Conf.Engine.CacheDir = Arg.substr(12);
      continue;
    }
    if (Arg.rfind("--max-sessions=", 0) == 0) {
      Conf.Engine.MaxSessions = unsigned(parseUintValue(Arg, 15));
      if (Conf.Engine.MaxSessions == 0) {
        std::fprintf(stderr, "error: --max-sessions must be at least 1\n");
        return 1;
      }
      continue;
    }
    if (Arg == "--scrub-timings") {
      Conf.Engine.ScrubTimings = true;
      continue;
    }
    if (Arg == "--durable-store") {
      Conf.Engine.DurableStore = true;
      continue;
    }
    if (Arg == "--scrub-store=") {
      std::fprintf(stderr, "error: --scrub-store needs a directory name\n");
      return 1;
    }
    if (Arg.rfind("--scrub-store=", 0) == 0) {
      ScrubStoreDir = Arg.substr(14);
      continue;
    }
    if (Arg.rfind("--fault-plan=", 0) == 0) {
      FaultPlan = Arg.substr(13);
      HaveFaultPlan = true;
      continue;
    }
    if (Arg.rfind("--limit-parse-depth=", 0) == 0) {
      uint64_t V = parseUintValue(Arg, 20);
      if (V == 0 || V > 1u << 20) {
        std::fprintf(stderr,
                     "error: --limit-parse-depth must be in [1, 1048576]\n");
        return 1;
      }
      Conf.Engine.DefaultLimits.MaxParseDepth = unsigned(V);
      continue;
    }
    if (Arg.rfind("--limit-tokens=", 0) == 0) {
      Conf.Engine.DefaultLimits.MaxTokens = parseUintValue(Arg, 15);
      continue;
    }
    if (Arg.rfind("--limit-ast-nodes=", 0) == 0) {
      Conf.Engine.DefaultLimits.MaxAstNodes = parseUintValue(Arg, 18);
      continue;
    }
    if (Arg.rfind("--limit-ir-insts=", 0) == 0) {
      Conf.Engine.DefaultLimits.MaxIRInstructions = parseUintValue(Arg, 17);
      continue;
    }
    if (Arg.rfind("--limit-prop-evals=", 0) == 0) {
      Conf.Engine.DefaultLimits.MaxPropagationEvals = parseUintValue(Arg, 19);
      continue;
    }
    if (Arg.rfind("--deadline-ms=", 0) == 0) {
      Conf.Engine.DefaultLimits.DeadlineMs = parseUintValue(Arg, 14);
      continue;
    }
    if (Arg.rfind("--emit-sample-log=", 0) == 0) {
      EmitSample = true;
      SampleConf.Requests = unsigned(parseUintValue(Arg, 18));
      continue;
    }
    if (Arg.rfind("--sample-seed=", 0) == 0) {
      SampleConf.Seed = parseUintValue(Arg, 14);
      continue;
    }
    std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
    printUsage();
    return 1;
  }

  if (EmitSample) {
    for (const std::string &Line : generateServiceLog(SampleConf))
      std::printf("%s\n", Line.c_str());
    return 0;
  }

  if (!ScrubStoreDir.empty()) {
    // Standalone recovery mode: scrub the store a crashed daemon left
    // behind and report what was repaired. Scrubbing is also implicit
    // whenever a store opens; this mode exists for operators and the
    // chaos CI job to verify consistency explicitly.
    ContentStore::Options StoreOpts;
    StoreOpts.ScrubOnOpen = false; // scrub() below, with a report
    ContentStore Store(ScrubStoreDir, StoreOpts);
    ContentStore::ScrubReport R = Store.scrub();
    JsonValue Doc = JsonValue::object();
    Doc.set("schema", "ipcp-scrub-v1");
    Doc.set("root", ScrubStoreDir);
    Doc.set("tmp_swept", R.TmpSwept);
    Doc.set("objects_checked", R.ObjectsChecked);
    Doc.set("quarantined", R.Quarantined);
    Doc.set("refs_checked", R.RefsChecked);
    Doc.set("dangling_refs_dropped", R.DanglingDropped);
    Doc.set("ok", R.Ok);
    std::printf("%s\n", Doc.dump(2).c_str());
    return R.Ok ? 0 : 2;
  }

  std::string PlanError;
  bool PlanOk = HaveFaultPlan ? faultInjector().installPlan(FaultPlan,
                                                            &PlanError)
                              : installFaultPlanFromEnv(&PlanError);
  if (!PlanOk) {
    std::fprintf(stderr, "error: malformed value in fault plan: %s\n",
                 PlanError.c_str());
    return 1;
  }

  Conf.Engine.SuiteResolver = [](const std::string &Name,
                                 std::string &SourceOut) {
    const SuiteProgram *Prog = findSuiteProgram(Name);
    if (!Prog)
      return false;
    SourceOut = Prog->Source;
    return true;
  };

  ShardedService Service(std::move(Conf));

  if (SocketPath.empty()) {
    bool ReadFailed = false, WriteFailed = false;
    std::string WriteError;
    serveStream(0, 1, Service, &ReadFailed, WriteFailed, WriteError);
    if (WriteFailed) {
      std::fprintf(stderr, "error: %s\n", WriteError.c_str());
      return 4;
    }
    if (ReadFailed) {
      std::fprintf(stderr, "error: reading stdin failed\n");
      return 2;
    }
    return 0;
  }

  std::string Error;
  int ListenFd = listenUnixSocket(SocketPath, &Error);
  if (ListenFd < 0) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 2;
  }
  std::fprintf(stderr, "ipcp_serverd: listening on %s\n", SocketPath.c_str());
  bool Shutdown = false;
  int Exit = 0;
  while (!Shutdown) {
    int Conn = acceptUnixConnection(ListenFd, &Error);
    if (Conn < 0) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      Exit = 2;
      break;
    }
    // Connections are served one at a time (requests inside a
    // connection still analyze concurrently across the shards); the
    // response stream of a connection is self-contained, with seq
    // restarting at 0. Session caches persist across connections.
    bool WriteFailed = false;
    std::string WriteError;
    Shutdown = serveStream(Conn, Conn, Service, nullptr, WriteFailed,
                           WriteError);
    closeFd(Conn);
    if (WriteFailed)
      std::fprintf(stderr, "warning: client write failed: %s\n",
                   WriteError.c_str());
  }
  closeFd(ListenFd);
  std::remove(SocketPath.c_str());
  return Exit;
}
