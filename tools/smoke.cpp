// Development smoke test: exercise the full pipeline on one program.
#include "analysis/SCCP.h"
#include "analysis/SSAConstruction.h"
#include "core/Pipeline.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/AstLower.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <cstdio>

using namespace ipcp;

static const char *Source = R"(
global nx, dt, steps, debug, depth;
global field[64];

proc init() {
  nx = 20; dt = 4; steps = 3; debug = 0; depth = 100;
  var i;
  do i = 0, 63 { field[i] = 0; }
}

proc noisy() {
  var v;
  read v;
  depth = v;
}

proc diffuse(w) {
  var i, c;
  c = nx * dt;
  do i = 1, nx - 1 { field[i] = field[i - 1] + w * c; }
}

proc step(k) {
  if (debug != 0) { call noisy(); }
  call diffuse(k * 2);
  print depth + k;
}

proc main() {
  var k;
  call init();
  do k = 1, steps { call step(k); }
  print depth;
}
)";

int main() {
  DiagnosticsEngine Diags;
  auto Prog = parseAndCheck(Source, Diags);
  if (!Prog) {
    std::fprintf(stderr, "FRONTEND ERRORS:\n%s", Diags.str().c_str());
    return 1;
  }
  auto M = lowerProgram(*Prog);
  auto Errs = verifyModule(*M, VerifyMode::PreSSA);
  for (auto &E : Errs)
    std::fprintf(stderr, "preSSA verify: %s\n", E.c_str());
  if (!Errs.empty())
    return 1;
  std::printf("=== pre-SSA IR ===\n%s\n", printModule(*M).c_str());

  // SSA on a clone.
  auto Clone = M->clone();
  CallGraph CG(*Clone);
  ModRefInfo MRI = ModRefInfo::compute(*Clone, CG);
  for (auto &P : Clone->procedures())
    constructSSA(*P, MRI);
  auto SSAErrs = verifyModule(*Clone, VerifyMode::SSA);
  for (auto &E : SSAErrs)
    std::fprintf(stderr, "SSA verify: %s\n", E.c_str());
  std::printf("=== SSA IR ===\n%s\n", printModule(*Clone).c_str());

  // Full IPCP.
  IPCPOptions Opts;
  IPCPResult R = runIPCP(*M, Opts);
  std::printf("=== IPCP (polynomial + RJF + MOD) ===\n");
  for (auto &PR : R.Procs) {
    std::printf("%s: refs=%u constants:", PR.Name.c_str(), PR.ConstantRefs);
    for (auto &[Name, V] : PR.EntryConstants)
      std::printf(" %s=%lld", Name.c_str(), (long long)V);
    std::printf("\n");
  }
  std::printf("total refs=%u entry constants=%u\n", R.TotalConstantRefs,
              R.TotalEntryConstants);
  std::printf("%s", R.Stats.str().c_str());

  // Ablations.
  for (auto Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraproceduralConstant,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial}) {
    IPCPOptions O;
    O.ForwardKind = Kind;
    IPCPResult RR = runIPCP(*M, O);
    IPCPOptions ONoRet = O;
    ONoRet.UseReturnJumpFunctions = false;
    IPCPResult RNoRet = runIPCP(*M, ONoRet);
    std::printf("kind=%-12s refs=%3u  (no-ret refs=%3u)\n",
                jumpFunctionKindName(Kind), RR.TotalConstantRefs,
                RNoRet.TotalConstantRefs);
  }
  IPCPOptions NoMod;
  NoMod.UseModInformation = false;
  std::printf("no-MOD refs=%u\n", runIPCP(*M, NoMod).TotalConstantRefs);
  IPCPOptions Intra;
  Intra.IntraproceduralOnly = true;
  std::printf("intra-only refs=%u\n", runIPCP(*M, Intra).TotalConstantRefs);
  auto Complete = runCompletePropagation(*M);
  std::printf("complete refs=%u rounds=%u blocksRemoved=%u\n",
              Complete.TotalConstantRefs, Complete.Rounds,
              Complete.BlocksRemoved);

  // Interpret + manual oracle.
  ExecutionResult Exec = interpret(*M);
  std::printf("exec status=%d steps=%llu outputs=%zu entries=%zu\n",
              (int)Exec.TheStatus, (unsigned long long)Exec.Steps,
              Exec.Output.size(), Exec.Entries.size());
  for (auto V : Exec.Output)
    std::printf("out: %lld\n", (long long)V);

  // Check soundness by name.
  unsigned Violations = 0;
  for (const EntrySnapshot &Snap : Exec.Entries) {
    const ProcedureResult *PR = R.findProc(Snap.Proc->getName());
    if (!PR)
      continue;
    for (auto &[Name, C] : PR->EntryConstants) {
      for (auto &[Var, Val] : Snap.Values) {
        if (Var->getName() == Name && Val != C) {
          std::printf("VIOLATION: %s.%s claimed %lld, saw %lld\n",
                      Snap.Proc->getName().c_str(), Name.c_str(),
                      (long long)C, (long long)Val);
          ++Violations;
        }
      }
    }
  }
  std::printf(Violations ? "UNSOUND (%u)\n" : "sound\n", Violations);
  return Violations != 0;
}
