// Development check: validate every suite program end-to-end and print
// the three tables. Shares the driver's observability surface:
//
//   suitecheck [--jobs=N] [--stats] [--trace[=FILE]] [--report-json=FILE]
//             [--cache-dir=DIR] [--no-cache] [--scrub-timings]
//             [--engine=jump|contexts]
//
// Programs (and table rows) are analyzed concurrently across N worker
// threads (default: hardware concurrency; --jobs=1 forces sequential).
// Every output — diagnostics, tables, counters, the JSON report — is
// collected in suite order, so the report is byte-identical at any job
// count apart from timing counters.
//
// The JSON report carries one "ipcp-report-v1" result per program plus
// the three paper tables, so suite-wide trajectories can be produced
// mechanically.
#include "core/Report.h"
#include "core/SuiteRunner.h"
#include "support/FileIO.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "workload/SuiteReport.h"
#include <cstdio>
#include <cstdlib>
#include <string>
using namespace ipcp;

static void usage(std::FILE *Out) {
  std::fprintf(Out, "usage: suitecheck [--jobs=N] [--stats] "
                       "[--trace[=FILE]] [--report-json=FILE]\n"
                       "                  [--cache-dir=DIR] [--no-cache] "
                       "[--scrub-timings]\n"
                       "  --jobs=N       analyze programs on N threads "
                       "(default: hardware concurrency)\n"
                       "  --cache-dir=DIR  persistent per-program summary "
                       "caches (docs/INCREMENTAL.md)\n"
                       "  --no-cache     ignore --cache-dir\n"
                       "  --scrub-timings  zero wall-clock fields in the "
                       "JSON report\n"
                       "  --engine=jump|contexts  propagation engine for "
                       "the per-program analyses\n"
                       "                 (contexts runs cache-less; "
                       "docs/CONTEXTS.md)\n");
}

int main(int argc, char **argv) {
  bool ShowStats = false, TraceOn = false;
  bool NoCache = false, ScrubTimings = false;
  std::string TraceFile, ReportFile, CacheDir;
  PropagationEngine Engine = PropagationEngine::Jump;
  unsigned Jobs = ThreadPool::defaultConcurrency();
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help") {
      usage(stdout);
      return 0;
    } else if (Arg == "--stats") {
      ShowStats = true;
    } else if (Arg.rfind("--cache-dir=", 0) == 0 && Arg.size() > 12) {
      CacheDir = Arg.substr(12);
    } else if (Arg == "--no-cache") {
      NoCache = true;
    } else if (Arg == "--scrub-timings") {
      ScrubTimings = true;
    } else if (Arg == "--engine=jump") {
      Engine = PropagationEngine::Jump;
    } else if (Arg == "--engine=contexts") {
      Engine = PropagationEngine::Contexts;
    } else if (Arg == "--trace") {
      TraceOn = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TraceOn = true;
      TraceFile = Arg.substr(8);
    } else if (Arg.rfind("--report-json=", 0) == 0 &&
               Arg.size() > 14) {
      ReportFile = Arg.substr(14);
    } else if (Arg.rfind("--jobs=", 0) == 0 && Arg.size() > 7) {
      char *End = nullptr;
      unsigned long Value = std::strtoul(Arg.c_str() + 7, &End, 10);
      if (*End != '\0' || Value == 0) {
        std::fprintf(stderr, "error: --jobs expects a positive integer\n");
        return 1;
      }
      Jobs = unsigned(Value);
    } else {
      usage(stderr);
      return 1;
    }
  }

  Trace TraceData;
  if (TraceOn)
    Trace::setActive(&TraceData);

  SuiteRunner Runner(Jobs);
  SuiteStudyResult Study =
      runSuiteStudy(Runner, !ReportFile.empty(),
                    NoCache ? std::string() : CacheDir, Engine);
  for (const std::string &Message : Study.Messages)
    if (!Message.empty())
      std::printf("%s", Message.c_str());

  std::printf("%s\n", formatTable1(Study.T1).c_str());
  std::printf("%s\n", formatTable2(Study.T2).c_str());
  std::printf("%s\n", formatTable3(Study.T3).c_str());
  std::printf("failures: %d\n", Study.Failures);

  if (ShowStats)
    std::printf("statistics (all programs):\n%s",
                formatStatsTable(Study.Counters).c_str());

  if (TraceOn) {
    Trace::setActive(nullptr);
    std::string Text = TraceData.str();
    if (TraceFile.empty()) {
      std::fprintf(stderr, "%s", Text.c_str());
    } else {
      std::string Error;
      if (!writeStringToFile(TraceFile, Text, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 2;
      }
    }
  }

  if (!ReportFile.empty()) {
    JsonValue Doc = buildSuiteReport(Study, TraceOn ? &TraceData : nullptr);
    if (ScrubTimings)
      scrubReportTimings(Doc);
    std::string Error;
    if (!writeJsonFile(ReportFile, Doc, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
  }
  return Study.Failures != 0;
}
