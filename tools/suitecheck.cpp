// Development check: validate every suite program end-to-end and print
// the three tables. Shares the driver's observability surface:
//
//   suitecheck [--stats] [--trace[=FILE]] [--report-json=FILE]
//
// The JSON report carries one "ipcp-report-v1" result per program plus
// the three paper tables, so suite-wide trajectories can be produced
// mechanically.
#include "core/Report.h"
#include "ir/Verifier.h"
#include "support/Trace.h"
#include "workload/Oracle.h"
#include "workload/Study.h"
#include <cstdio>
#include <string>
using namespace ipcp;

int main(int argc, char **argv) {
  bool ShowStats = false, TraceOn = false;
  std::string TraceFile, ReportFile;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--stats") {
      ShowStats = true;
    } else if (Arg == "--trace") {
      TraceOn = true;
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TraceOn = true;
      TraceFile = Arg.substr(8);
    } else if (Arg.rfind("--report-json=", 0) == 0 &&
               Arg.size() > 14) {
      ReportFile = Arg.substr(14);
    } else {
      std::fprintf(stderr,
                   "usage: suitecheck [--stats] [--trace[=FILE]] "
                   "[--report-json=FILE]\n");
      return 1;
    }
  }

  Trace TraceData;
  if (TraceOn)
    Trace::setActive(&TraceData);

  IPCPOptions Opts;
  StatisticSet Merged;
  JsonValue Programs = JsonValue::array();
  int Failures = 0;
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    ScopedTraceSpan ProgSpan("program", Prog.Name);
    auto M = loadSuiteModule(Prog);
    auto Errs = verifyModule(*M, VerifyMode::PreSSA);
    for (auto &E : Errs) {
      std::printf("%s: verify: %s\n", Prog.Name.c_str(), E.c_str());
      ++Failures;
    }
    IPCPResult R = runIPCP(*M);
    OracleReport Rep = checkSoundness(*M, R);
    bool Ok = Rep.Sound && Rep.ExecStatus == ExecutionResult::Status::Ok;
    if (!Ok) {
      std::printf("%s: %s (exec status %d)\n", Prog.Name.c_str(),
                  Rep.str().c_str(), (int)Rep.ExecStatus);
      ++Failures;
    }
    Merged.merge(R.Stats);
    if (!ReportFile.empty()) {
      AnalysisReport Report;
      Report.SourceName = Prog.Name;
      Report.M = M.get();
      Report.Opts = &Opts;
      Report.Single = &R;
      JsonValue Entry = buildAnalysisReport(Report);
      Entry.set("sound", Ok);
      Programs.push(std::move(Entry));
    }
  }

  auto T1 = computeTable1(benchmarkSuite());
  auto T2 = computeTable2(benchmarkSuite());
  auto T3 = computeTable3(benchmarkSuite());
  std::printf("%s\n", formatTable1(T1).c_str());
  std::printf("%s\n", formatTable2(T2).c_str());
  std::printf("%s\n", formatTable3(T3).c_str());
  std::printf("failures: %d\n", Failures);

  if (ShowStats)
    std::printf("statistics (all programs):\n%s",
                formatStatsTable(Merged).c_str());

  if (TraceOn) {
    Trace::setActive(nullptr);
    std::string Text = TraceData.str();
    if (TraceFile.empty()) {
      std::fprintf(stderr, "%s", Text.c_str());
    } else {
      std::FILE *F = std::fopen(TraceFile.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     TraceFile.c_str());
        return 1;
      }
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    }
  }

  if (!ReportFile.empty()) {
    JsonValue Doc = JsonValue::object();
    Doc.set("schema", "ipcp-suite-report-v1");
    Doc.set("failures", Failures);
    Doc.set("programs", std::move(Programs));
    Doc.set("table1", table1ToJson(T1));
    Doc.set("table2", table2ToJson(T2));
    Doc.set("table3", table3ToJson(T3));
    Doc.set("counters", Merged.toJson());
    if (TraceOn)
      Doc.set("trace", TraceData.toJson());
    std::string Error;
    if (!writeJsonFile(ReportFile, Doc, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }
  return Failures != 0;
}
