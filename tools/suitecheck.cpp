// Development check: validate every suite program end-to-end and print
// the three tables.
#include "ir/Verifier.h"
#include "workload/Oracle.h"
#include "workload/Study.h"
#include <cstdio>
using namespace ipcp;

int main() {
  int Failures = 0;
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    auto M = loadSuiteModule(Prog);
    auto Errs = verifyModule(*M, VerifyMode::PreSSA);
    for (auto &E : Errs) {
      std::printf("%s: verify: %s\n", Prog.Name.c_str(), E.c_str());
      ++Failures;
    }
    IPCPResult R = runIPCP(*M);
    OracleReport Rep = checkSoundness(*M, R);
    if (!Rep.Sound || Rep.ExecStatus != ExecutionResult::Status::Ok) {
      std::printf("%s: %s (exec status %d)\n", Prog.Name.c_str(),
                  Rep.str().c_str(), (int)Rep.ExecStatus);
      ++Failures;
    }
  }
  std::printf("%s\n", formatTable1(computeTable1(benchmarkSuite())).c_str());
  std::printf("%s\n", formatTable2(computeTable2(benchmarkSuite())).c_str());
  std::printf("%s\n", formatTable3(computeTable3(benchmarkSuite())).c_str());
  std::printf("failures: %d\n", Failures);
  return Failures != 0;
}
